"""Paged KV-cache memory accounting for the serving simulator.

The paper's central constraint is the memory system: model weights and the
KV cache of every in-flight request share the same capacity (the unified
PIM/NPU memory on IANUS, HBM on the A100/DFX baselines).  PR 3's serving
simulator ignored that — admission was a fixed ``max_batch`` head count —
so its load curves said nothing about the regime the design targets.

This module supplies the missing accounting, vLLM-style:

* the KV cache is allocated in fixed-size **pages** of ``page_tokens``
  tokens each (a page holds the K and V vectors of every block for those
  tokens, i.e. ``page_tokens * model.num_blocks *
  model.kv_bytes_per_token_per_block`` bytes);
* the page pool's byte **budget** is derived from the backend itself:
  whatever the backend's memory system holds beyond the model weights,
  scaled by a ``fraction`` knob so experiments can sweep memory pressure
  without inventing hardware (:func:`kv_budget_bytes`);
* under **worst-case-commit** admission a request's worst-case page count
  (its full ``input + output`` tokens) is committed up front and released
  at completion.  Committing the maximum is deliberately conservative: it
  is deadlock-free by construction (an admitted request can always grow to
  its last token), which is what makes the scheduler's *no
  over-subscription at any event time* invariant checkable — and cheap to
  check — in :mod:`repro.serving.validate`;
* under **optimistic** admission only the prompt pages are committed up
  front and decode **grows** the reservation on demand
  (:meth:`KvPageAccountant.grow`), one page boundary at a time.  Growth can
  fail when the pool is exhausted; the scheduler then preempts a victim and
  recomputes it (:mod:`repro.serving.simulator`), so optimism admits more
  concurrent requests in exchange for occasional wasted work.

Shared-prefix reference counting
--------------------------------
At production scale most prompts share a system prefix, and vLLM-style
prefix caching stores those pages **once**.  A request may declare a
*prefix group* (``prefix_id >= 0``) and a prefix length in tokens; only the
**whole** pages of the prefix (``prefix_tokens // page_tokens``) are
shareable — the partial last page, if any, stays private, exactly as a
radix-tree block cache would split it.  The first member of a group to
arrive pays for the shared pages and every later member reuses them for
free; a per-group **reference count** keeps the pages resident until the
last member releases.  Admission therefore charges only the *unique new*
pages of a request, which is what lets a shared-prefix trace admit more
concurrent requests at the same ``kv_fraction``.

Host-DRAM swap tier
-------------------
Preempt-and-recompute throws a victim's KV state away and pays the prefill
again.  The alternative the paper's memory hierarchy invites is to **swap**
the victim's pages out to host DRAM over the PCIe/interconnect link and
restore them on resume — trading link transfer time for recompute time.
:meth:`KvPageAccountant.swap_out` moves a request's *private* pages off the
device (its shared-prefix pages stay resident — other members still decode
against them, so evicting them would corrupt the pool) and
:meth:`KvPageAccountant.swap_in` moves them back, failing loudly if the
pool no longer has room.  The scheduler prices the transfer from the page
size and a ``link_gbps`` knob; which side of the swap-vs-recompute frontier
a configuration lands on is exactly what the ``kv_hierarchy`` sweep
measures.

Backends expose their capacity differently, so the derivation dispatches on
what the cost model's ``config`` carries: the simulator backends
(:class:`~repro.core.system.IanusSystem` and its NPU-MEM variant) expose
``npu_visible_capacity_bytes`` (per device, so it scales with
``num_devices``); the analytical baselines expose ``memory_capacity_bytes``
(the A100's 80 GiB, DFX's aggregate HBM).  Cost models exposing neither —
test doubles, future backends — fall back to a fixed
:data:`DEFAULT_KV_BUDGET_BYTES` budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import GiB
from repro.core.costmodel import CostModel
from repro.models.transformer import ModelConfig

__all__ = [
    "DEFAULT_PAGE_TOKENS",
    "DEFAULT_KV_BUDGET_BYTES",
    "backend_memory_capacity_bytes",
    "kv_budget_bytes",
    "KvPageAccountant",
]

#: Tokens per KV page (vLLM's default block size).
DEFAULT_PAGE_TOKENS = 16

#: Fixed-budget fallback for cost models that expose no memory capacity.
DEFAULT_KV_BUDGET_BYTES = 16 * GiB


def backend_memory_capacity_bytes(cost_model: CostModel) -> "int | None":
    """Total model-visible memory of a backend, or ``None`` if unknown.

    Simulator backends report the NPU-visible slice of the PIM memory
    (times the device count); analytical baselines report their HBM
    capacity.  ``None`` means the caller should fall back to
    :data:`DEFAULT_KV_BUDGET_BYTES`.
    """
    config = getattr(cost_model, "config", None)
    if config is None:
        return None
    capacity = getattr(config, "npu_visible_capacity_bytes", None)
    if capacity is not None:
        return int(capacity) * int(getattr(cost_model, "num_devices", 1))
    capacity = getattr(config, "memory_capacity_bytes", None)
    if capacity is not None:
        return int(capacity)
    return None


def kv_budget_bytes(
    cost_model: CostModel,
    model: ModelConfig,
    fraction: float = 1.0,
    models=None,
) -> int:
    """Bytes of the backend's memory available to the KV page pool.

    The budget is ``fraction`` of whatever the backend's capacity holds
    beyond the model weights.  ``fraction`` sweeps memory pressure: 1.0
    grants the whole remainder, smaller values model co-tenancy or smaller
    memory parts without touching the latency model.

    ``models`` (a co-hosted model set containing ``model``) sizes the pool
    once, conservatively, for the **largest** member: the replica holds one
    resident model at a time, but the pool must never shrink mid-run when
    a weight swap brings in a bigger model.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    heaviest = model
    if models:
        heaviest = max(models, key=lambda member: member.param_bytes)
    capacity = backend_memory_capacity_bytes(cost_model)
    if capacity is None:
        free = DEFAULT_KV_BUDGET_BYTES
    else:
        free = capacity - heaviest.param_bytes
        if free <= 0:
            raise ValueError(
                f"{heaviest.name} weights ({heaviest.param_bytes / GiB:.2f} "
                f"GiB) do not fit the {cost_model.name} memory system "
                f"({capacity / GiB:.2f} GiB); no room for any KV cache"
            )
    return int(free * fraction)


@dataclass
class _PrefixGroup:
    """One resident shared prefix: whole pages held once for many requests."""

    prefix_tokens: int
    pages: int
    refcount: int = 0


@dataclass
class KvPageAccountant:
    """Tracks committed KV pages of the in-flight requests against a budget.

    ``reserve``/``release`` bracket a request's lifetime; ``can_reserve``
    is the admission test.  Reserving more pages than the pool holds raises
    — the scheduler must never over-subscribe, and the accountant enforcing
    it here is what the invariant suite leans on.

    Requests that declare a shared prefix (``prefix_id >= 0``) charge the
    prefix's whole pages only on the group's first reservation; later
    members bump the group's reference count and pay only their private
    pages.  ``swap_out``/``swap_in`` move a request's private pages between
    the device pool and host DRAM (shared pages never move — other group
    members still use them).
    """

    budget_bytes: int
    token_bytes: int
    page_tokens: int = DEFAULT_PAGE_TOKENS
    #: Private (unshared) resident pages per request.
    _reserved: dict[int, int] = field(default_factory=dict, repr=False)
    #: Private pages per request currently swapped out to host DRAM.
    _swapped: dict[int, int] = field(default_factory=dict, repr=False)
    #: Resident shared-prefix groups, by prefix id.
    _groups: dict[int, _PrefixGroup] = field(default_factory=dict, repr=False)
    #: Prefix group of each sharing request (absent for private requests).
    _request_group: dict[int, int] = field(default_factory=dict, repr=False)
    #: High-water mark of committed pages over the accountant's lifetime.
    peak_reserved_pages: int = 0

    def __post_init__(self) -> None:
        if self.budget_bytes <= 0:
            raise ValueError("budget_bytes must be positive")
        if self.token_bytes <= 0:
            raise ValueError("token_bytes must be positive")
        if self.page_tokens < 1:
            raise ValueError("page_tokens must be at least 1")
        if self.total_pages < 1:
            raise ValueError(
                f"KV budget of {self.budget_bytes} bytes is smaller than one "
                f"{self.page_tokens}-token page ({self.page_bytes} bytes)"
            )

    @classmethod
    def for_backend(
        cls,
        cost_model: CostModel,
        model: ModelConfig,
        fraction: float = 1.0,
        page_tokens: int = DEFAULT_PAGE_TOKENS,
        budget_bytes: "int | None" = None,
        models=None,
    ) -> "KvPageAccountant":
        """Accountant sized from a backend's memory system (or an override).

        With a co-hosted ``models`` set, the pool is sized once for the
        worst case over the set — the largest weight footprint shrinks the
        budget and the largest per-token KV bytes set the page geometry —
        so pages stay comparable across weight swaps and the pool never
        resizes mid-run.
        """
        budget = (
            budget_bytes
            if budget_bytes is not None
            else kv_budget_bytes(cost_model, model, fraction, models=models)
        )
        token_bytes = model.num_blocks * model.kv_bytes_per_token_per_block
        if models:
            token_bytes = max(
                member.num_blocks * member.kv_bytes_per_token_per_block
                for member in models
            )
        return cls(
            budget_bytes=budget, token_bytes=token_bytes, page_tokens=page_tokens
        )

    # ------------------------------------------------------------------
    @property
    def page_bytes(self) -> int:
        return self.page_tokens * self.token_bytes

    @property
    def total_pages(self) -> int:
        return self.budget_bytes // self.page_bytes

    @property
    def reserved_pages(self) -> int:
        """Resident pages: every request's private pages plus each shared
        group's pages counted **once**."""
        return sum(self._reserved.values()) + sum(
            group.pages for group in self._groups.values()
        )

    @property
    def free_pages(self) -> int:
        return self.total_pages - self.reserved_pages

    @property
    def swapped_pages(self) -> int:
        """Private pages currently parked in host DRAM (not in the pool)."""
        return sum(self._swapped.values())

    def pages_for(self, tokens: int) -> int:
        """Pages needed to hold ``tokens`` tokens of KV cache (ceiling)."""
        if tokens < 0:
            raise ValueError("tokens must be non-negative")
        return -(-tokens // self.page_tokens)

    def shared_pages_for(self, prefix_tokens: int) -> int:
        """Whole pages of a shared prefix — the shareable part.

        The partial last page (``prefix_tokens % page_tokens`` tokens)
        stays private to each request, radix-tree style.
        """
        if prefix_tokens < 0:
            raise ValueError("prefix_tokens must be non-negative")
        return prefix_tokens // self.page_tokens

    def fits_alone(self, tokens: int) -> bool:
        """Whether a request of ``tokens`` tokens can ever be served."""
        return self.pages_for(tokens) <= self.total_pages

    def resident_prefix_pages(self, prefix_id: int) -> int:
        """Pages of a shared prefix already resident (0 when absent).

        The kv-aware router uses this to steer a request toward the
        replica where its prefix is already cached — those pages cost it
        nothing there.
        """
        group = self._groups.get(prefix_id)
        return group.pages if group is not None else 0

    def prefix_refcount(self, prefix_id: int) -> int:
        """Reference count of a resident shared prefix (0 when absent)."""
        group = self._groups.get(prefix_id)
        return group.refcount if group is not None else 0

    # ------------------------------------------------------------------
    def _charge_pages(
        self, tokens: int, prefix_id: int, prefix_tokens: int
    ) -> int:
        """Unique new pages a reservation of ``tokens`` tokens would charge."""
        pages = self.pages_for(tokens)
        if prefix_id < 0 or prefix_tokens <= 0:
            return pages
        shared = self.shared_pages_for(prefix_tokens)
        group = self._groups.get(prefix_id)
        if group is not None and group.prefix_tokens != prefix_tokens:
            raise ValueError(
                f"prefix group {prefix_id} holds a {group.prefix_tokens}-token "
                f"prefix; request declares {prefix_tokens} tokens (all members "
                f"of a group must share one prefix length)"
            )
        if pages < shared:
            raise ValueError(
                f"reservation of {tokens} tokens ({pages} pages) cannot carry "
                f"a {prefix_tokens}-token shared prefix ({shared} pages)"
            )
        private = pages - shared
        return private + (shared if group is None else 0)

    def can_reserve(
        self, tokens: int, prefix_id: int = -1, prefix_tokens: int = 0
    ) -> bool:
        return self._charge_pages(tokens, prefix_id, prefix_tokens) <= self.free_pages

    def held_pages(self, request_id: int) -> int:
        """Private resident pages of one request (0 when none)."""
        return self._reserved.get(request_id, 0)

    def request_swapped_pages(self, request_id: int) -> int:
        """Private pages of one request parked in host DRAM (0 when none)."""
        return self._swapped.get(request_id, 0)

    def shared_held_pages(self, request_id: int) -> int:
        """Shared pages backing one request (0 for private requests)."""
        gid = self._request_group.get(request_id)
        if gid is None:
            return 0
        return self._groups[gid].pages

    def grow_need(self, request_id: int, tokens: int) -> int:
        """Pages a reservation still lacks to cover ``tokens`` tokens."""
        held = self.held_pages(request_id) + self.shared_held_pages(request_id)
        return self.pages_for(tokens) - held

    def can_grow(self, request_id: int, tokens: int) -> bool:
        """Whether a reservation can grow to cover ``tokens`` tokens."""
        return self.grow_need(request_id, tokens) <= self.free_pages

    def grow(self, request_id: int, tokens: int) -> int:
        """Grow a reservation to cover ``tokens`` tokens; returns added pages.

        On-demand page growth of optimistic admission: a no-op (returns 0)
        while the tokens still fit the held pages (private plus the shared
        prefix, which never grows), raises on over-subscription — the
        scheduler must preempt first.
        """
        if request_id not in self._reserved:
            raise ValueError(f"request {request_id} holds no reservation")
        held = self._reserved[request_id] + self.shared_held_pages(request_id)
        need = self.pages_for(tokens) - held
        if need <= 0:
            return 0
        if need > self.free_pages:
            raise ValueError(
                f"KV over-subscription: request {request_id} needs {need} more "
                f"page(s) but only {self.free_pages} of {self.total_pages} are free"
            )
        self._reserved[request_id] += need
        if self.reserved_pages > self.peak_reserved_pages:
            self.peak_reserved_pages = self.reserved_pages
        return need

    def reserve(
        self,
        request_id: int,
        tokens: int,
        prefix_id: int = -1,
        prefix_tokens: int = 0,
    ) -> int:
        """Commit the pages of one request; returns the pages *charged*.

        With no prefix group that is the full page count.  With a shared
        prefix it is the private pages plus — only when this request is
        the group's first resident member — the shared pages; either way
        the return value is exactly what ``reserved_pages`` went up by,
        which is what the admit event reports.
        """
        if request_id in self._reserved or request_id in self._swapped:
            raise ValueError(f"request {request_id} already holds a reservation")
        charge = self._charge_pages(tokens, prefix_id, prefix_tokens)
        if charge > self.free_pages:
            raise ValueError(
                f"KV over-subscription: request {request_id} needs {charge} "
                f"page(s) but only {self.free_pages} of {self.total_pages} are free"
            )
        if prefix_id >= 0 and prefix_tokens > 0:
            shared = self.shared_pages_for(prefix_tokens)
            group = self._groups.get(prefix_id)
            if group is None:
                group = _PrefixGroup(prefix_tokens=prefix_tokens, pages=shared)
                self._groups[prefix_id] = group
            group.refcount += 1
            self._reserved[request_id] = self.pages_for(tokens) - shared
            self._request_group[request_id] = prefix_id
        else:
            self._reserved[request_id] = self.pages_for(tokens)
        if self.reserved_pages > self.peak_reserved_pages:
            self.peak_reserved_pages = self.reserved_pages
        return charge

    def release(self, request_id: int) -> int:
        """Drop one request's reservation; returns the resident pages freed.

        Frees the request's private pages and drops its reference on the
        shared prefix; the shared pages themselves are freed only when the
        last member leaves.  A swapped-out request may also be released
        (its host copy is simply discarded); only the resident pages it
        still held come back to the pool.
        """
        if request_id in self._reserved:
            freed = self._reserved.pop(request_id)
        elif request_id in self._swapped:
            self._swapped.pop(request_id)
            freed = 0
        else:
            raise ValueError(f"request {request_id} holds no reservation")
        gid = self._request_group.pop(request_id, None)
        if gid is not None:
            group = self._groups[gid]
            group.refcount -= 1
            if group.refcount <= 0:
                freed += group.pages
                del self._groups[gid]
        return freed

    # ------------------------------------------------------------------
    def swap_out(self, request_id: int) -> int:
        """Move a request's private pages to host DRAM; returns pages freed.

        The shared-prefix pages stay resident (other members of the group
        still decode against them) and the reference count stays held, so
        the prefix cannot be evicted from under a swapped request.
        """
        if request_id not in self._reserved:
            raise ValueError(f"request {request_id} holds no reservation")
        if request_id in self._swapped:
            raise ValueError(f"request {request_id} is already swapped out")
        pages = self._reserved.pop(request_id)
        self._swapped[request_id] = pages
        return pages

    def can_swap_in(self, request_id: int) -> bool:
        """Whether a swapped request's private pages fit the pool again."""
        return self._swapped.get(request_id, 0) <= self.free_pages

    def swap_in(self, request_id: int) -> int:
        """Restore a swapped request's private pages; returns pages restored."""
        if request_id not in self._swapped:
            raise ValueError(f"request {request_id} is not swapped out")
        pages = self._swapped[request_id]
        if pages > self.free_pages:
            raise ValueError(
                f"KV over-subscription: swapping request {request_id} back in "
                f"needs {pages} page(s) but only {self.free_pages} of "
                f"{self.total_pages} are free"
            )
        del self._swapped[request_id]
        self._reserved[request_id] = pages
        if self.reserved_pages > self.peak_reserved_pages:
            self.peak_reserved_pages = self.reserved_pages
        return pages

    def release_all(self) -> int:
        """Drop every reservation at once (replica failure); returns pages freed.

        The cache contents are gone with the replica — resident pages,
        shared prefixes and the host-DRAM copies alike — so the victims
        must recompute from scratch wherever they land next.
        """
        pages = self.reserved_pages
        self._reserved.clear()
        self._swapped.clear()
        self._groups.clear()
        self._request_group.clear()
        return pages
