"""The vectorized serving-event core ("megatrace") behind ``engine="array"``.

:class:`ArraySimulationRun` exposes the exact surface of
:class:`~repro.serving.simulator.SimulationRun` (``offer`` /
``advance_until`` / ``finish`` / ``fail`` / ``recover`` / ``resubmit`` /
``catch_up`` / ``note_scale`` and the router-visible properties), so the
one-shot ``simulate``, the streaming ``simulate_stream`` and the whole
cluster layer run on it unchanged.  Three things make it two orders of
magnitude faster than the reference object engine:

**Columnar request state.**  Requests live as parallel columns
(arrival / prompt / output / generated / held-pages / ...) indexed by a
*row*; the queues hold row indices.  Rows are recycled through a free
list on completion, so resident state is O(outstanding requests) — a
streamed million-request day never materializes, and no per-request
Python object survives its own lifetime.

**Dense decode-cost tables.**  All decode pricing goes through a
:class:`~repro.serving.decode_table.DecodeCostTable` built once per
(model, backend, anchor grid) by the cost provider: the inner loop reads
plain Python floats out of dense lists and never touches the cost model.
Table entries are bit-identical to ``provider.decode``, so per-iteration
stepping reproduces the object engine's floating-point results *exactly*.

**Macro-stepping.**  When every active request is decoding, the batch
membership is provably stable until the next completion (admission caps
``len(active)`` at the policy's concurrency gate, so every policy's batch
is the whole active set), and the fused-batch floors provably never bind
(:attr:`~repro.serving.decode_table.DecodeCostTable.floor_free`).  The
engine then executes *k* decode iterations in O(B) arithmetic from the
table's prefix sums — clock, energy, FLOPs and KV growth all advance in
closed form — stopping exactly where the object engine's loop would have
changed behavior: the next completion, the next arrival that could be
admitted, the ``until`` horizon, the table edge, or a KV grant that no
longer fits (which falls back to one per-iteration step so preemption
runs the reference path).  Prefix-sum differences reorder float
additions, which is why macro-stepped aggregate metrics are pinned to
~1e-9 instead of bit-identical; ``record_events=True`` disables
macro-stepping, and the per-iteration path then yields an event log
**bit-identical** to the object engine's (the differential suite asserts
exact equality).
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from collections import deque
from time import perf_counter

from repro.energy.model import EnergyBreakdown
from repro.serving.request import Request, RequestMetrics
from repro.serving.simulator import (
    FcfsPolicy,
    PriorityPolicy,
    ServingMetrics,
    SimEvent,
    SrptPolicy,
)

__all__ = ["ArraySimulationRun"]


class _KvPool:
    """Integer-counter view of the KV page pool.

    :class:`~repro.serving.kv_memory.KvPageAccountant` keeps a dict of
    per-request holdings and *sums it* on every ``reserved_pages`` read —
    O(active) per event, fine for the object engine, fatal in a loop that
    reads it millions of times.  The array run holds per-row pages in a
    column and keeps the pool-wide counters here as plain ints; the
    attribute names match the accountant so metric finalization and the
    cluster's router snapshots read either interchangeably.
    """

    __slots__ = (
        "page_tokens",
        "total_pages",
        "budget_bytes",
        "reserved_pages",
        "peak_reserved_pages",
    )

    def __init__(self, page_tokens: int, total_pages: int, budget_bytes: int) -> None:
        self.page_tokens = page_tokens
        self.total_pages = total_pages
        self.budget_bytes = budget_bytes
        self.reserved_pages = 0
        self.peak_reserved_pages = 0

    @property
    def free_pages(self) -> int:
        return self.total_pages - self.reserved_pages


class ArraySimulationRun:
    """Columnar drop-in for :class:`~repro.serving.simulator.SimulationRun`."""

    def __init__(
        self,
        sim,
        record_events: bool = False,
        kv_bounds: "tuple[int, int] | None" = None,
    ) -> None:
        self.sim = sim
        accountant = sim._new_accountant()
        self.kv = _KvPool(
            page_tokens=accountant.page_tokens,
            total_pages=accountant.total_pages,
            budget_bytes=accountant.budget_bytes,
        )
        self.events: "list[SimEvent] | None" = [] if record_events else None
        if kv_bounds is not None:
            sim.provider.prepare(*kv_bounds)

        # Decode-cost table (dense lists + prefix sums); absent under
        # exact pricing or unknown KV bounds, in which case every decode
        # is priced through the provider (correct, per-iteration only).
        self._tbl_lo, self._tbl_hi = 1, 0
        self._lat = None
        self._lat_max = 0.0
        self._floor_free = False
        self._base: "tuple | None" = None
        if not sim.provider.exact and kv_bounds is not None:
            self._install_table(sim.provider.decode_table(*kv_bounds))

        # Request columns, indexed by row.  Rows recycle via _free.
        self._arr: list = []
        self._inp: list = []
        self._out: list = []
        self._cls: list = []
        self._rid: list = []
        self._prefilled: list = []
        self._generated: list = []
        self._first: list = []
        self._held: list = []
        self._free: list = []

        self.pending: "deque[int]" = deque()
        # A deque, not a list: under backlog (the regime megatrace
        # targets) arrival-order admission pops the head of a queue that
        # can hold most of the trace, and list.pop(0) there is O(n) per
        # admission — quadratic overall.
        self.waiting: "deque[int]" = deque()
        self.active: "list[int]" = []
        #: Active rows still prefilling (generated == 0), maintained
        #: incrementally so the macro-eligibility test is O(1).
        self._num_prefilling = 0

        self._detail = sim.per_request_detail
        self.completed: list[RequestMetrics] = []
        # Pooled-only completion columns (no-detail mode): compact typed
        # arrays, converted to numpy once at finalization.
        self._done_arrival = array("d")
        self._done_first = array("d")
        self._done_completion = array("d")
        self._done_out = array("q")
        self._done_cls = array("q") if sim.slo_targets is not None else None
        # Bound append methods: _record_completion runs once per request.
        self._push_done = (
            self._done_arrival.append,
            self._done_first.append,
            self._done_completion.append,
            self._done_out.append,
            None if self._done_cls is None else self._done_cls.append,
        )

        self.clock = 0.0
        self.busy = 0.0
        self._energy_mem = 0.0
        self._energy_pim = 0.0
        self._energy_npu = 0.0
        self.flops = 0.0
        self.prefill_passes = 0
        self.decode_passes = 0
        self.decode_tokens = 0
        self.admissions = 0
        self.peak_active = 0
        self.preemptions = 0
        self.recomputed_tokens = 0
        self.offered = 0
        self._outstanding = 0
        self.first_arrival: "float | None" = None
        self.finished = False
        self.dead = False
        self._last_until: "float | None" = None
        self.phase_s: dict[str, float] = {
            "admit": 0.0,
            "prefill": 0.0,
            "decode": 0.0,
            "metrics": 0.0,
        }
        self._step_kind = "decode"

        policy = sim.policy
        self._ptype = type(policy)
        self._arrival_order = self._ptype is not SrptPolicy and (
            self._ptype is not PriorityPolicy
        )
        self._policy_cap = (
            1 if isinstance(policy, FcfsPolicy) else policy.max_batch
        )
        self._page_tokens = self.kv.page_tokens
        self._is_decoder = sim.model.is_decoder
        self._optimistic = sim.admission == "optimistic"
        self._batch_share = sim.batch_share
        # True when _step may take the monolithic-prefill shortcut: the
        # conditions are all fixed for the lifetime of the run.
        self._mono_fast = (
            sim.chunk_tokens == 0 and self.events is None and self._arrival_order
        )
        self._chunk_costs: dict = {}

    # ------------------------------------------------------------------
    def _install_table(self, table) -> None:
        self._tbl_lo, self._tbl_hi = table.kv_lo, table.kv_hi
        (self._lat, self._em, self._ep, self._en, self._fl) = table.columns()
        (
            self._plat,
            self._pem,
            self._pep,
            self._pen,
            self._pfl,
        ) = table.prefix_sums()
        self._floor_free = table.floor_free
        self._base = table.base
        # Largest single-iteration latency on the table: a per-step cost
        # can never exceed batch * max - shared, so macro budget caps that
        # provably cannot bind are dismissed with one multiply.
        self._lat_max = max(self._lat)

    def _base_cost(self) -> tuple:
        if self._base is None:
            cost = self.sim.provider.base()
            self._base = (
                cost.latency_s,
                cost.energy.normal_memory_j,
                cost.energy.pim_op_j,
                cost.energy.npu_cores_j,
                cost.flops,
            )
        return self._base

    # ------------------------------------------------------------------
    # Row management
    # ------------------------------------------------------------------
    def _new_row(self, request: Request) -> int:
        if self._free:
            row = self._free.pop()
            self._arr[row] = request.arrival_s
            self._inp[row] = request.input_tokens
            self._out[row] = request.output_tokens
            self._cls[row] = request.priority_class
            self._rid[row] = request.request_id
            self._prefilled[row] = 0
            self._generated[row] = 0
            self._first[row] = 0.0
            self._held[row] = 0
            return row
        row = len(self._arr)
        self._arr.append(request.arrival_s)
        self._inp.append(request.input_tokens)
        self._out.append(request.output_tokens)
        self._cls.append(request.priority_class)
        self._rid.append(request.request_id)
        self._prefilled.append(0)
        self._generated.append(0)
        self._first.append(0.0)
        self._held.append(0)
        return row

    def _request(self, row: int) -> Request:
        return Request(
            request_id=self._rid[row],
            arrival_s=self._arr[row],
            input_tokens=self._inp[row],
            output_tokens=self._out[row],
            priority_class=self._cls[row],
        )

    def _pages_for(self, tokens: int) -> int:
        return -(-tokens // self._page_tokens)

    # ------------------------------------------------------------------
    # SimulationRun surface: offers and router-visible state
    # ------------------------------------------------------------------
    def offer(self, request: Request) -> None:
        """Inject one request; offers must come in ``(arrival, id)`` order."""
        if self.finished:
            raise ValueError("cannot offer a request to a finished run")
        if self.dead:
            raise ValueError("cannot offer a request to a failed replica")
        if not self._is_decoder and request.output_tokens > 1:
            raise ValueError(
                f"{self.sim.model.name} is not a decoder; serving traces for it "
                "must be summarization-only (output_tokens == 1)"
            )
        pending = self.pending
        if pending:
            last = pending[-1]
            if (request.arrival_s, request.request_id) < (
                self._arr[last],
                self._rid[last],
            ):
                raise ValueError(
                    "requests must be offered in (arrival_s, request_id) order"
                )
        pending.append(self._new_row(request))
        self.offered += 1
        self._outstanding += request.input_tokens + request.output_tokens
        if self.first_arrival is None:
            self.first_arrival = request.arrival_s

    def offer_many(self, requests) -> None:
        """Bulk :meth:`offer`: same guards and ordering check, hoisted out
        of the per-request loop so streaming a megatrace does not pay a
        method call and four attribute lookups per arrival."""
        if not requests:
            return
        if self.finished:
            raise ValueError("cannot offer a request to a finished run")
        if self.dead:
            raise ValueError("cannot offer a request to a failed replica")
        pending = self.pending
        push = pending.append
        arr = self._arr
        inp = self._inp
        out = self._out
        cls = self._cls
        rid = self._rid
        prefilled = self._prefilled
        generated = self._generated
        first = self._first
        held = self._held
        free = self._free
        pop = free.pop
        is_decoder = self._is_decoder
        if pending:
            last = pending[-1]
            last_key = (arr[last], rid[last])
        else:
            last_key = None
        added = 0
        outstanding = 0
        for request in requests:
            arrival = request.arrival_s
            request_id = request.request_id
            output_tokens = request.output_tokens
            if not is_decoder and output_tokens > 1:
                raise ValueError(
                    f"{self.sim.model.name} is not a decoder; serving traces "
                    "for it must be summarization-only (output_tokens == 1)"
                )
            key = (arrival, request_id)
            if last_key is not None and key < last_key:
                raise ValueError(
                    "requests must be offered in (arrival_s, request_id) order"
                )
            last_key = key
            input_tokens = request.input_tokens
            if free:
                row = pop()
                arr[row] = arrival
                inp[row] = input_tokens
                out[row] = output_tokens
                cls[row] = request.priority_class
                rid[row] = request_id
                prefilled[row] = 0
                generated[row] = 0
                first[row] = 0.0
                held[row] = 0
            else:
                row = len(arr)
                arr.append(arrival)
                inp.append(input_tokens)
                out.append(output_tokens)
                cls.append(request.priority_class)
                rid.append(request_id)
                prefilled.append(0)
                generated.append(0)
                first.append(0.0)
                held.append(0)
            push(row)
            added += 1
            outstanding += input_tokens + output_tokens
            if self.first_arrival is None:
                self.first_arrival = arrival
        self.offered += added
        self._outstanding += outstanding

    @property
    def outstanding_requests(self) -> int:
        """Requests routed here and not yet completed."""
        return len(self.pending) + len(self.waiting) + len(self.active)

    @property
    def outstanding_tokens(self) -> int:
        """Prompt + output tokens not yet computed across live requests.

        Maintained incrementally (offer/chunk/decode/preempt/fail), so it
        is O(1) here yet integer-identical to the object engine's O(n)
        sums — the cluster's routers see the same numbers either way.
        """
        return self._outstanding

    @property
    def energy(self) -> EnergyBreakdown:
        return EnergyBreakdown(
            normal_memory_j=self._energy_mem,
            pim_op_j=self._energy_pim,
            npu_cores_j=self._energy_npu,
        )

    # ------------------------------------------------------------------
    # Event emission (identical shape to the object engine's)
    # ------------------------------------------------------------------
    def _emit(
        self,
        kind: str,
        latency: float = 0.0,
        request_id: "int | None" = None,
        tokens: int = 0,
        decode_ids: tuple = (),
    ) -> None:
        if self.events is not None:
            self.events.append(
                SimEvent(
                    kind=kind,
                    clock_s=self.clock,
                    latency_s=latency,
                    request_id=request_id,
                    tokens=tokens,
                    decode_ids=decode_ids,
                    active=len(self.active),
                    waiting=len(self.waiting),
                    kv_reserved_pages=self.kv.reserved_pages,
                    kv_total_pages=self.kv.total_pages,
                )
            )

    # ------------------------------------------------------------------
    # Policy decisions, re-derived over columns (bit-equal: integer keys)
    # ------------------------------------------------------------------
    def _admit_index(self, waiting: "deque[int]") -> int:
        # Iterates values rather than indexing: waiting is a deque, where
        # positional access is O(n).  First minimum wins, as in the
        # object policies' (key, index) tie-break.
        ptype = self._ptype
        if ptype is SrptPolicy:
            inp, out = self._inp, self._out
            best, best_key = 0, None
            for i, row in enumerate(waiting):
                key = inp[row] + out[row]
                if best_key is None or key < best_key:
                    best, best_key = i, key
            return best
        if ptype is PriorityPolicy:
            cls = self._cls
            best, best_key = 0, None
            for i, row in enumerate(waiting):
                key = cls[row]
                if best_key is None or key < best_key:
                    best, best_key = i, key
            return best
        return 0

    def _remaining(self, row: int) -> int:
        return (self._inp[row] - self._prefilled[row]) + (
            self._out[row] - self._generated[row]
        )

    def _prefill_index(self, prefilling: "list[int]") -> int:
        ptype = self._ptype
        if ptype is SrptPolicy:
            return min(
                range(len(prefilling)),
                key=lambda i: (self._remaining(prefilling[i]), i),
            )
        if ptype is PriorityPolicy:
            cls = self._cls
            return min(
                range(len(prefilling)), key=lambda i: (cls[prefilling[i]], i)
            )
        return 0

    def _decode_batch(self, decodable: "list[int]") -> "list[int]":
        ptype = self._ptype
        cap = self._policy_cap
        if ptype is SrptPolicy:
            order = sorted(
                range(len(decodable)),
                key=lambda i: (self._remaining(decodable[i]), i),
            )
            return [decodable[i] for i in order[:cap]]
        if ptype is PriorityPolicy:
            cls = self._cls
            order = sorted(
                range(len(decodable)), key=lambda i: (cls[decodable[i]], i)
            )
            return [decodable[i] for i in order[:cap]]
        return decodable[:cap]

    # ------------------------------------------------------------------
    # Costs
    # ------------------------------------------------------------------
    def _decode_cost(self, kv: int) -> tuple:
        """(latency, mem_j, pim_j, npu_j, flops) — bit-equal to decode()."""
        if self._tbl_lo <= kv <= self._tbl_hi:
            index = kv - self._tbl_lo
            return (
                self._lat[index],
                self._em[index],
                self._ep[index],
                self._en[index],
                self._fl[index],
            )
        cost = self.sim.provider.decode(kv)
        return (
            cost.latency_s,
            cost.energy.normal_memory_j,
            cost.energy.pim_op_j,
            cost.energy.npu_cores_j,
            cost.flops,
        )

    def _chunk_cost(self, prefix: int, chunk: int) -> tuple:
        key = (prefix, chunk)
        cached = self._chunk_costs.get(key)
        if cached is None:
            cost = self.sim.provider.prefill_chunk(prefix, chunk)
            cached = (
                cost.latency_s,
                cost.energy.normal_memory_j,
                cost.energy.pim_op_j,
                cost.energy.npu_cores_j,
                cost.flops,
            )
            self._chunk_costs[key] = cached
        return cached

    def _fused_scalar(
        self, carrier: "tuple | None", costs: "list[tuple]"
    ) -> tuple:
        """Scalar twin of ``ServingSimulator._fused_iteration``.

        Same operations in the same order on the same values (table
        entries are bit-equal to provider costs), so the result is
        bit-identical to the object engine's.
        """
        if carrier is None and len(costs) == 1:
            return costs[0]
        if carrier is not None and not costs:
            return carrier
        base = self._base_cost()
        if carrier is None:
            parts = costs
            shared = self.sim.batch_share * (len(costs) - 1)
        else:
            parts = [carrier, *costs]
            shared = self.sim.batch_share * len(costs)
        latency = sum(cost[0] for cost in parts) - shared * base[0]
        floor = max(cost[0] for cost in parts)
        if floor > latency:
            latency = floor
        out = [latency, 0.0, 0.0, 0.0, 0.0]
        for component in (1, 2, 3):
            saved = shared * base[component]
            total = sum(cost[component] for cost in parts)
            peak = max(cost[component] for cost in parts)
            value = total - saved
            out[component] = peak if peak > value else value
        out[4] = sum(cost[4] for cost in parts)
        return tuple(out)

    # ------------------------------------------------------------------
    # The discrete-event loop
    # ------------------------------------------------------------------
    def advance_until(self, until: "float | None") -> None:
        """Run every pass *starting* before ``until`` (all work if ``None``)."""
        if self.finished:
            raise ValueError("cannot advance a finished run")
        if until is not None:
            if self._last_until is not None and until < self._last_until:
                raise ValueError(
                    f"advance_until moved backwards: target {until:.6f}s is "
                    f"before the previous target {self._last_until:.6f}s"
                )
            self._last_until = until
        profile = self.sim.profile
        arr = self._arr
        waiting = self.waiting
        active = self.active
        pending = self.pending
        cap = self._policy_cap
        macro_ok = self.events is None and self._floor_free
        while True:
            while pending and arr[pending[0]] <= self.clock:
                waiting.append(pending.popleft())
            if not waiting and not active:
                if pending and (until is None or arr[pending[0]] <= until):
                    self.clock = arr[pending[0]]
                    self._emit("idle")
                    continue
                return
            if until is not None and self.clock >= until:
                return
            # _admit's own loop condition, checked inline: with a full
            # batch or an empty queue the call would be a no-op, and this
            # loop runs once per pass.
            if waiting and len(active) < cap:
                if profile:
                    start = perf_counter()
                    self._admit()
                    self.phase_s["admit"] += perf_counter() - start
                else:
                    self._admit()
            if not active:
                raise RuntimeError(
                    f"policy {self.sim.policy.name!r} left the device idle with "
                    f"{len(self.waiting)} admissible request(s) waiting"
                )  # pragma: no cover - defensive, no shipped policy does this
            # Macro-stepping: all-decode batches with an event-free run and
            # a floor-free table advance many iterations in O(B).
            if macro_ok and not self._num_prefilling:
                if profile:
                    start = perf_counter()
                    stepped = self._macro_step(until)
                    self.phase_s["decode"] += perf_counter() - start
                else:
                    stepped = self._macro_step(until)
                if stepped:
                    continue
            if profile:
                start = perf_counter()
                self._step()
                self.phase_s[self._step_kind] += perf_counter() - start
            else:
                self._step()

    # ------------------------------------------------------------------
    def _admit(self) -> None:
        kv = self.kv
        waiting, active = self.waiting, self.active
        optimistic = self._optimistic
        cap = self._policy_cap
        arrival_order = self._arrival_order
        page_tokens = self._page_tokens
        while waiting and len(active) < cap:
            index = 0 if arrival_order else self._admit_index(waiting)
            row = waiting[index]
            total = self._inp[row] + self._out[row]
            total_pages = -(-total // page_tokens)
            if total_pages > kv.total_pages:
                raise ValueError(
                    f"request {self._rid[row]} needs "
                    f"{total_pages} KV pages but the "
                    f"pool holds {kv.total_pages}; it can never be served "
                    f"(raise kv_fraction or the budget)"
                )
            pages = (
                -(-self._inp[row] // page_tokens) if optimistic else total_pages
            )
            if pages > kv.free_pages:
                break
            kv.reserved_pages += pages
            if kv.reserved_pages > kv.peak_reserved_pages:
                kv.peak_reserved_pages = kv.reserved_pages
            self._held[row] = pages
            if index == 0:
                waiting.popleft()
            else:
                del waiting[index]
            active.append(row)
            self._num_prefilling += 1
            self.admissions += 1
            if len(active) > self.peak_active:
                self.peak_active = len(active)
            if self.events is not None:
                self._emit("admit", request_id=self._rid[row], tokens=pages)

    def _step(self) -> None:
        """One device iteration — the per-iteration (bit-exact) path."""
        generated = self._generated
        if self._num_prefilling and self._mono_fast:
            # Monolithic prefill with no piggyback batch under an
            # arrival-order policy: the head prefilling row runs alone and
            # the pass IS the carrier.  Pick it by direct scan and apply
            # it without the generic fused/emit machinery — at one such
            # pass per served request this is a first-order term of the
            # million-request budget.
            for row in self.active:
                if generated[row] == 0:
                    chunk = self._inp[row] - self._prefilled[row]
                    self._prefill_only_step(
                        row, chunk, self._chunk_cost(self._prefilled[row], chunk)
                    )
                    return
        sim = self.sim
        if self._num_prefilling == 0:
            prefilling: list[int] = []
            decodable = self.active
        else:
            prefilling = [row for row in self.active if generated[row] == 0]
            decodable = [row for row in self.active if generated[row] > 0]
        row: "int | None" = None
        carrier: "tuple | None" = None
        chunk = 0
        batch: list[int] = []
        if prefilling:
            row = prefilling[self._prefill_index(prefilling)]
            remaining = self._inp[row] - self._prefilled[row]
            chunk = (
                remaining
                if sim.chunk_tokens == 0
                else min(sim.chunk_tokens, remaining)
            )
            carrier = self._chunk_cost(self._prefilled[row], chunk)
            if sim.chunk_tokens and decodable:
                batch = self._decode_batch(decodable)
            elif sim.chunk_tokens == 0 and self.events is None:
                self._prefill_only_step(row, chunk, carrier)
                return
        else:
            batch = self._decode_batch(decodable)

        if self._optimistic and batch:
            requested = batch
            batch = self._grow_batch(batch, row)
            if carrier is None and not batch:
                head = requested[0]
                kv = self.kv
                held = self._held[head]
                need = (
                    self._pages_for(self._inp[head] + generated[head]) - held
                )
                raise RuntimeError(
                    "KV pool exhausted with preemption disabled: request "
                    f"{self._rid[head]} holds {held} page(s) and "
                    f"needs {need} more for its next decode, but only "
                    f"{kv.free_pages} of {kv.total_pages} pool page(s) are "
                    "free and no prefill can run (enable preempt or raise "
                    "the KV budget)"
                )

        inp = self._inp
        costs = [self._decode_cost(inp[r] + generated[r]) for r in batch]
        self._step_kind = "prefill" if carrier is not None else "decode"
        latency, e_mem, e_pim, e_npu, pass_flops = self._fused_scalar(
            carrier, costs
        )
        self.clock += latency
        self.busy += latency
        self._energy_mem += e_mem
        self._energy_pim += e_pim
        self._energy_npu += e_npu
        self.flops += pass_flops
        if carrier is not None:
            self.prefill_passes += 1
        if batch:
            self.decode_passes += 1
            self.decode_tokens += len(batch)
            self._outstanding -= len(batch)
        self._emit(
            "step",
            latency=latency,
            request_id=None if row is None else self._rid[row],
            tokens=chunk,
            decode_ids=tuple(self._rid[r] for r in batch),
        )

        finished: list[int] = []
        if row is not None:
            self._prefilled[row] += chunk
            self._outstanding -= chunk
            if self._prefilled[row] >= inp[row]:
                generated[row] = 1
                self._num_prefilling -= 1
                self._outstanding -= 1
                self._first[row] = self.clock
                if generated[row] >= self._out[row]:
                    finished.append(row)
        for r in batch:
            generated[r] += 1
            if generated[r] >= self._out[r]:
                finished.append(r)
        for r in finished:
            self.active.remove(r)
            self.kv.reserved_pages -= self._held[r]
            self._held[r] = 0
            self._record_completion(r)
            self._emit("complete", request_id=self._rid[r])

    def _prefill_only_step(self, row: int, chunk: int, carrier: tuple) -> None:
        """Apply one monolithic-prefill pass (no decode batch, no events).

        A monolithic chunk always covers the whole remaining prompt, so
        the pass both runs and completes the prefill.
        """
        self._step_kind = "prefill"
        clock = self.clock + carrier[0]
        self.clock = clock
        self.busy += carrier[0]
        self._energy_mem += carrier[1]
        self._energy_pim += carrier[2]
        self._energy_npu += carrier[3]
        self.flops += carrier[4]
        self.prefill_passes += 1
        self._prefilled[row] += chunk
        self._generated[row] = 1
        self._num_prefilling -= 1
        self._outstanding -= chunk + 1
        self._first[row] = clock
        if self._out[row] <= 1:
            self.active.remove(row)
            self.kv.reserved_pages -= self._held[row]
            self._held[row] = 0
            self._record_completion(row)

    # ------------------------------------------------------------------
    def _macro_step(self, until: "float | None") -> bool:
        """Advance up to the next behavior boundary in O(B) per probe.

        Returns ``False`` when this boundary cannot be macro-stepped (KV
        out of table range, or an optimistic grant that needs preemption)
        — the caller then runs one per-iteration step.
        """
        active = self.active
        batch_size = len(active)
        lo, hi = self._tbl_lo, self._tbl_hi
        inp, out, generated = self._inp, self._out, self._generated
        offsets = []
        append = offsets.append
        span = hi - lo + 1
        steps = span
        off_max = 0
        for row in active:
            offset = inp[row] + generated[row] - lo
            if offset < 0:
                return False
            append(offset)
            if offset > off_max:
                off_max = offset
            remaining = out[row] - generated[row]
            if remaining < steps:
                steps = remaining
        if steps > span - off_max:
            steps = span - off_max
        if steps < 1:
            return False

        optimistic = self._optimistic
        kvs = None
        if optimistic:
            # Largest k whose total page growth fits the free pool
            # (monotone in k).  k=0 means the grant needs preemption:
            # fall back to the per-iteration path, which runs it exactly.
            held = self._held
            free = self.kv.free_pages
            page_tokens = self._page_tokens
            kvs = [offset + lo for offset in offsets]

            def growth(j: int) -> int:
                need = 0
                for position, row in enumerate(active):
                    pages = -(-(kvs[position] + j - 1) // page_tokens)
                    delta = pages - held[row]
                    if delta > 0:
                        need += delta
                return need

            if growth(steps) > free:
                low, high = 0, steps  # growth(low) fits, growth(high) doesn't
                while high - low > 1:
                    mid = (low + high) // 2
                    if growth(mid) > free:
                        high = mid
                    else:
                        low = mid
                steps = low
                if steps < 1:
                    return False

        base = self._base  # a table is installed whenever macros run
        shared = self._batch_share * (batch_size - 1)
        prefix_lat = self._plat
        shared_lat = shared * base[0]

        # Budget caps: stop at `until` and, while the admission gate is
        # open, at the next pending arrival (at a full batch arrivals
        # merely queue — bulk-moved at the loop top after this macro
        # ends).  elapsed(j) is monotone in j, so capping by each budget
        # in turn equals one cap by the smallest budget.
        budget = None if until is None else until - self.clock
        if self.pending and batch_size < self._policy_cap:
            arrival_budget = self._arr[self.pending[0]] - self.clock
            if budget is None or arrival_budget < budget:
                budget = arrival_budget
        # Conservative dismissal: elapsed(steps) can never exceed
        # steps * batch * lat_max, so a budget above that bound cannot
        # bind and the exact O(B) scans are skipped.  The inflation
        # factor absorbs summation rounding (~n*eps << 1e-9) so the
        # dismissal is sound even when the bound is nearly tight.
        if budget is not None and (
            steps * batch_size * self._lat_max * 1.000000001 >= budget
        ):
            lat_start = 0.0
            total = 0.0
            for offset in offsets:
                lat_start += prefix_lat[offset]
                total += prefix_lat[offset + steps]
            if total - lat_start - steps * shared_lat >= budget:
                # Smallest j in [1, steps] with elapsed(j) >= budget.
                low, high = 0, steps  # elapsed(low) < budget <= elapsed(high)
                while high - low > 1:
                    mid = (low + high) // 2
                    elapsed = 0.0
                    for offset in offsets:
                        elapsed += prefix_lat[offset + mid]
                    elapsed = elapsed - lat_start - mid * shared_lat
                    if elapsed < budget:
                        low = mid
                    else:
                        high = mid
                steps = high

        j = steps
        prefix_em, prefix_ep = self._pem, self._pep
        prefix_en, prefix_fl = self._pen, self._pfl
        sum_lat = 0.0
        sum_em = 0.0
        sum_ep = 0.0
        sum_en = 0.0
        sum_fl = 0.0
        finished = None
        for offset, row in zip(offsets, active):
            offset_j = offset + j
            sum_lat += prefix_lat[offset_j] - prefix_lat[offset]
            sum_em += prefix_em[offset_j] - prefix_em[offset]
            sum_ep += prefix_ep[offset_j] - prefix_ep[offset]
            sum_en += prefix_en[offset_j] - prefix_en[offset]
            sum_fl += prefix_fl[offset_j] - prefix_fl[offset]
            new_generated = generated[row] + j
            generated[row] = new_generated
            if new_generated >= out[row]:
                if finished is None:
                    finished = [row]
                else:
                    finished.append(row)
        delta = sum_lat - j * shared_lat
        self.clock += delta
        self.busy += delta
        self._energy_mem += sum_em - j * shared * base[1]
        self._energy_pim += sum_ep - j * shared * base[2]
        self._energy_npu += sum_en - j * shared * base[3]
        self.flops += sum_fl
        self.decode_passes += j
        self.decode_tokens += j * batch_size
        self._outstanding -= j * batch_size

        kv = self.kv
        if optimistic:
            held = self._held
            page_tokens = self._page_tokens
            grown = 0
            for kv_now, row in zip(kvs, active):
                pages = -(-(kv_now + j - 1) // page_tokens)
                if pages > held[row]:
                    grown += pages - held[row]
                    held[row] = pages
            if grown:
                kv.reserved_pages += grown
                if kv.reserved_pages > kv.peak_reserved_pages:
                    kv.peak_reserved_pages = kv.reserved_pages
        if finished is not None:
            for row in finished:
                active.remove(row)
                kv.reserved_pages -= self._held[row]
                self._held[row] = 0
                self._record_completion(row)
        return True

    # ------------------------------------------------------------------
    # Optimistic admission: growth and preempt-and-recompute
    # ------------------------------------------------------------------
    def _grow_batch(
        self, batch: "list[int]", carrier_row: "int | None"
    ) -> "list[int]":
        kv = self.kv
        granted: list[int] = []
        protected: set[int] = set()
        if carrier_row is not None:
            protected.add(carrier_row)
        for row in batch:
            if row not in self.active:
                continue  # preempted by an earlier member's growth
            need = (
                self._pages_for(self._inp[row] + self._generated[row])
                - self._held[row]
            )
            if need > 0 and need > kv.free_pages and self.sim.preempt:
                protected.add(row)
                while need > kv.free_pages:
                    victim = self._choose_victim(protected)
                    if victim is None:
                        break  # everyone left is protected: stall, not deadlock
                    self._preempt(victim)
            if need <= kv.free_pages:
                if need > 0:
                    kv.reserved_pages += need
                    if kv.reserved_pages > kv.peak_reserved_pages:
                        kv.peak_reserved_pages = kv.reserved_pages
                    self._held[row] += need
                granted.append(row)
                protected.add(row)
        return granted

    def _choose_victim(self, protected: "set[int]") -> "int | None":
        candidates = [row for row in self.active if row not in protected]
        if not candidates:
            return None
        generated, prefilled = self._generated, self._prefilled
        arr, rid = self._arr, self._rid
        return min(
            candidates,
            key=lambda row: (
                generated[row],
                prefilled[row],
                -arr[row],
                -rid[row],
            ),
        )

    def _preempt(self, victim: int) -> None:
        pages = self._held[victim]
        self.kv.reserved_pages -= pages
        self._held[victim] = 0
        self.active.remove(victim)
        if self._generated[victim] == 0:
            self._num_prefilling -= 1
        self.preemptions += 1
        lost = self._prefilled[victim] + self._generated[victim]
        self.recomputed_tokens += lost
        self._outstanding += lost
        if self.preemptions > 50 * max(self.offered, 1):  # pragma: no cover
            raise RuntimeError(
                f"preemption livelock: {self.preemptions} preemptions over "
                f"{self.offered} offered request(s)"
            )
        # The object engine builds a fresh _InFlight at re-admission;
        # rows persist here, so reset the progress columns now.
        self._prefilled[victim] = 0
        self._generated[victim] = 0
        self._first[victim] = 0.0
        self._requeue(victim)
        self._emit("preempt", request_id=self._rid[victim], tokens=pages)

    def _requeue(self, row: int) -> None:
        arr, rid = self._arr, self._rid
        keys = [(arr[r], rid[r]) for r in self.waiting]
        index = bisect_left(keys, (arr[row], rid[row]))
        self.waiting.insert(index, row)

    # ------------------------------------------------------------------
    # Completion recording and finalization
    # ------------------------------------------------------------------
    def _record_completion(self, row: int) -> None:
        if self._detail:
            sim = self.sim
            slo_s = 0.0
            if sim.slo_targets:
                index = min(self._cls[row], len(sim.slo_targets) - 1)
                slo_s = sim.slo_targets[index]
            self.completed.append(
                RequestMetrics(
                    request_id=self._rid[row],
                    arrival_s=self._arr[row],
                    first_token_s=self._first[row],
                    completion_s=self.clock,
                    input_tokens=self._inp[row],
                    output_tokens=self._out[row],
                    priority_class=self._cls[row],
                    slo_s=slo_s,
                )
            )
        else:
            push_arr, push_first, push_done, push_out, push_cls = self._push_done
            push_arr(self._arr[row])
            push_first(self._first[row])
            push_done(self.clock)
            push_out(self._out[row])
            if push_cls is not None:
                push_cls(self._cls[row])
        self._free.append(row)

    def finish(self) -> ServingMetrics:
        """Drain all remaining work and return the run's metrics."""
        if self.finished:
            raise ValueError("finish() called twice on the same run")
        self.advance_until(None)
        self.finished = True
        makespan = (
            self.clock - self.first_arrival if self.first_arrival is not None else 0.0
        )
        if self.sim.profile:
            start = perf_counter()
            metrics = self._finalize(makespan)
            self.phase_s["metrics"] += perf_counter() - start
            return metrics
        return self._finalize(makespan)

    def _finalize(self, makespan: float) -> ServingMetrics:
        if self._detail:
            self.completed.sort(key=lambda metrics: metrics.request_id)
            return self.sim._finalize(self, makespan)
        return self._finalize_pooled(makespan)

    def _finalize_pooled(self, makespan: float) -> ServingMetrics:
        """Pool metrics straight from the completion columns (numpy).

        Same aggregate formulas as ``ServingSimulator._finalize``
        (including the percentile interpolation rule) without building a
        :class:`RequestMetrics` per request — at 1e6 requests that object
        churn costs more than the simulation itself.
        """
        import numpy as np

        sim = self.sim
        arrival = np.asarray(self._done_arrival)
        first = np.asarray(self._done_first)
        completion = np.asarray(self._done_completion)
        out = np.asarray(self._done_out)
        count = int(arrival.size)
        latencies = completion - arrival
        ttfts = first - arrival
        multi = out > 1
        tpots = (
            (completion[multi] - first[multi]) / (out[multi] - 1)
            if count
            else np.empty(0)
        )
        output_tokens = int(out.sum()) if count else 0

        def pooled_mean(values) -> float:
            return float(values.mean()) if values.size else 0.0

        def pooled_percentile(values, q: float) -> float:
            if not values.size:
                return 0.0
            ordered = np.sort(values)
            position = q / 100.0 * (ordered.size - 1)
            lower = int(position)
            upper = min(lower + 1, ordered.size - 1)
            weight = position - lower
            return float(
                ordered[lower] + weight * (ordered[upper] - ordered[lower])
            )

        slo_attainment: "float | None" = None
        slo_by_class: dict[str, float] = {}
        if sim.slo_targets is not None:
            if count:
                classes = np.asarray(self._done_cls)
                targets = np.asarray(sim.slo_targets, dtype=np.float64)
                slo = targets[np.minimum(classes, len(targets) - 1)]
                met = latencies <= slo
                slo_attainment = float(met.mean())
                slo_by_class = {
                    str(int(cls)): float(met[classes == cls].mean())
                    for cls in np.unique(classes)
                }
            else:
                slo_attainment = 1.0

        ordered_latencies = np.sort(latencies)
        ordered_ttfts = np.sort(ttfts)
        kv = self.kv
        decode_passes = self.decode_passes
        return ServingMetrics(
            backend=sim.cost_model.name,
            model=sim.model.name,
            policy=sim.policy.name,
            num_requests=count,
            makespan_s=makespan,
            busy_s=self.busy,
            utilization=self.busy / makespan if makespan > 0 else 0.0,
            output_tokens=output_tokens,
            tokens_per_s=output_tokens / makespan if makespan > 0 else 0.0,
            requests_per_s=count / makespan if makespan > 0 else 0.0,
            latency_mean_s=pooled_mean(latencies),
            latency_p50_s=pooled_percentile(ordered_latencies, 50.0),
            latency_p99_s=pooled_percentile(ordered_latencies, 99.0),
            ttft_mean_s=pooled_mean(ttfts),
            ttft_p50_s=pooled_percentile(ordered_ttfts, 50.0),
            ttft_p99_s=pooled_percentile(ordered_ttfts, 99.0),
            tpot_mean_s=pooled_mean(tpots),
            energy_j=self.energy.total_j,
            flops=self.flops,
            prefill_passes=self.prefill_passes,
            decode_passes=decode_passes,
            mean_decode_batch=(
                self.decode_tokens / decode_passes if decode_passes else 0.0
            ),
            admission=sim.admission,
            admissions=self.admissions,
            peak_active=self.peak_active,
            preemptions=self.preemptions,
            recomputed_tokens=self.recomputed_tokens,
            chunk_tokens=sim.chunk_tokens,
            kv_page_tokens=kv.page_tokens,
            kv_pages_total=kv.total_pages,
            kv_peak_pages=kv.peak_reserved_pages,
            kv_budget_bytes=kv.budget_bytes,
            slo_attainment=slo_attainment,
            slo_by_class=slo_by_class,
            per_request=(),
        )

    # ------------------------------------------------------------------
    # Failure injection and failover (driven by the cluster layer)
    # ------------------------------------------------------------------
    def fail(self, now: float) -> "tuple[list[Request], int]":
        """Kill this replica at instant ``now`` (see the object engine)."""
        if self.finished:
            raise ValueError("cannot fail a finished run")
        if self.dead:
            raise ValueError("replica is already dead")
        dropped_ids = tuple(sorted(self._rid[row] for row in self.active))
        lost_rows = list(self.active) + list(self.waiting) + list(self.pending)
        lost = [self._request(row) for row in lost_rows]
        lost.sort(key=lambda request: (request.arrival_s, request.request_id))
        pages = self.kv.reserved_pages
        self.kv.reserved_pages = 0
        for row in lost_rows:
            self._held[row] = 0
            self._free.append(row)
        self.active.clear()
        self.waiting.clear()
        self.pending.clear()
        self._num_prefilling = 0
        self._outstanding = 0
        if now > self.clock:
            self.clock = now
        self.dead = True
        self._emit("fail", tokens=pages, decode_ids=dropped_ids)
        return lost, pages

    def recover(self, now: float) -> None:
        """Bring a failed replica back (empty: its KV cache did not survive)."""
        if self.finished:
            raise ValueError("cannot recover a finished run")
        if not self.dead:
            raise ValueError("cannot recover a replica that is not dead")
        self.dead = False
        if now > self.clock:
            self.clock = now
        self._emit("recover")

    def resubmit(self, request: Request) -> None:
        """Re-inject a failed-over request for recompute from scratch."""
        if self.finished:
            raise ValueError("cannot resubmit a request to a finished run")
        if self.dead:
            raise ValueError("cannot resubmit a request to a failed replica")
        self._requeue(self._new_row(request))
        self.offered += 1
        self._outstanding += request.input_tokens + request.output_tokens
        if self.first_arrival is None or request.arrival_s < self.first_arrival:
            self.first_arrival = request.arrival_s

    def catch_up(self, now: float) -> None:
        """Jump an idle replica's clock forward to ``now``."""
        if now > self.clock and not self.active and not self.waiting:
            self.clock = now
            self._emit("idle")

    def note_scale(self, delta: int) -> None:
        """Record an autoscaling decision (+1 spawn, -1 drain) in the log."""
        self._emit("scale", tokens=delta)
