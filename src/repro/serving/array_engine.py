"""The vectorized serving-event core ("megatrace") behind ``engine="array"``.

:class:`ArraySimulationRun` exposes the exact surface of
:class:`~repro.serving.simulator.SimulationRun` (``offer`` /
``advance_until`` / ``finish`` / ``fail`` / ``recover`` / ``resubmit`` /
``catch_up`` / ``note_scale`` and the router-visible properties), so the
one-shot ``simulate``, the streaming ``simulate_stream`` and the whole
cluster layer run on it unchanged.  Three things make it two orders of
magnitude faster than the reference object engine:

**Columnar request state.**  Requests live as parallel columns
(arrival / prompt / output / generated / held-pages / ...) indexed by a
*row*; the queues hold row indices.  Rows are recycled through a free
list on completion, so resident state is O(outstanding requests) — a
streamed million-request day never materializes, and no per-request
Python object survives its own lifetime.

**Dense decode-cost tables.**  All decode pricing goes through a
:class:`~repro.serving.decode_table.DecodeCostTable` built once per
(model, backend, anchor grid) by the cost provider: the inner loop reads
plain Python floats out of dense lists and never touches the cost model.
Table entries are bit-identical to ``provider.decode``, so per-iteration
stepping reproduces the object engine's floating-point results *exactly*.

**Macro-stepping.**  When every active request is decoding, the batch
membership is provably stable until the next completion (admission caps
``len(active)`` at the policy's concurrency gate, so every policy's batch
is the whole active set), and the fused-batch floors provably never bind
(:attr:`~repro.serving.decode_table.DecodeCostTable.floor_free`).  The
engine then executes *k* decode iterations in O(B) arithmetic from the
table's prefix sums — clock, energy, FLOPs and KV growth all advance in
closed form — stopping exactly where the object engine's loop would have
changed behavior: the next completion, the next arrival that could be
admitted, the ``until`` horizon, the table edge, or a KV grant that no
longer fits (which falls back to one per-iteration step so preemption
runs the reference path).  Prefix-sum differences reorder float
additions, which is why macro-stepped aggregate metrics are pinned to
~1e-9 instead of bit-identical; ``record_events=True`` disables
macro-stepping, and the per-iteration path then yields an event log
**bit-identical** to the object engine's (the differential suite asserts
exact equality).

**Exact-accounting fallback.**  Shared-prefix requests (``prefix_id >=
0``) and the host-DRAM swap tier need the real reference-counted
:class:`~repro.serving.kv_memory.KvPageAccountant` — integer counters
cannot express "these pages are held once for many requests" or "these
pages are parked off-device".  The run then keeps the accountant as
``self.kv``, the vectorized fast paths (absorption, bursts,
macro-stepping) stand down, and the per-iteration loop mirrors the
object engine operation for operation, so event logs stay bit-identical
there too.  Traces with no sharing and no swap never pay for any of it.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from collections import deque
from itertools import islice
from time import perf_counter

import numpy as np

from repro.energy.model import EnergyBreakdown
from repro.serving.request import Request, RequestMetrics
from repro.serving.simulator import (
    FcfsPolicy,
    PriorityPolicy,
    ServingMetrics,
    SimEvent,
    SrptPolicy,
)

__all__ = ["ArraySimulationRun"]


class _KvPool:
    """Integer-counter view of the KV page pool.

    :class:`~repro.serving.kv_memory.KvPageAccountant` keeps a dict of
    per-request holdings and *sums it* on every ``reserved_pages`` read —
    O(active) per event, fine for the object engine, fatal in a loop that
    reads it millions of times.  The array run holds per-row pages in a
    column and keeps the pool-wide counters here as plain ints; the
    attribute names match the accountant so metric finalization and the
    cluster's router snapshots read either interchangeably.
    """

    __slots__ = (
        "page_tokens",
        "total_pages",
        "budget_bytes",
        "reserved_pages",
        "peak_reserved_pages",
    )

    def __init__(self, page_tokens: int, total_pages: int, budget_bytes: int) -> None:
        self.page_tokens = page_tokens
        self.total_pages = total_pages
        self.budget_bytes = budget_bytes
        self.reserved_pages = 0
        self.peak_reserved_pages = 0

    @property
    def free_pages(self) -> int:
        return self.total_pages - self.reserved_pages

    def commit(self, pages: int) -> None:
        """Reserve ``pages`` and roll the high-water mark — the single
        commit hook (every fast path used to inline this pair)."""
        self.reserved_pages += pages
        if self.reserved_pages > self.peak_reserved_pages:
            self.peak_reserved_pages = self.reserved_pages

    def note_peak(self, pages: int) -> None:
        """Roll the high-water mark for work applied in closed form (the
        absorbers complete requests without ever holding their pages)."""
        if pages > self.peak_reserved_pages:
            self.peak_reserved_pages = pages

    def resident_prefix_pages(self, prefix_id: int) -> int:
        """Interface parity with the accountant: the integer pool only
        serves runs with no sharing, where no prefix is ever resident."""
        return 0


class ArraySimulationRun:
    """Columnar drop-in for :class:`~repro.serving.simulator.SimulationRun`."""

    #: Master switch for the arrival-batched underload fast path.  Class
    #: level so tests (and the differential harness) can pin the exact
    #: per-arrival reference path with a subclass or instance override.
    arrival_batching = True

    #: Use ``np.searchsorted`` for the burst runner's lone-request budget
    #: bisect (byte-identical to the scalar bisect — the prefix-sum
    #: differences are the same IEEE subtractions; the suite pins it).
    #: Instance-overridable so the pin can run both paths.
    vector_bisect = True

    def __init__(
        self,
        sim,
        record_events: bool = False,
        kv_bounds: "tuple[int, int] | None" = None,
    ) -> None:
        self.sim = sim
        accountant = sim._new_accountant()
        #: Exact-accounting mode: with the swap tier (or once a
        #: shared-prefix request is offered) the run keeps the real
        #: reference-counting accountant and the vectorized fast paths
        #: stand down — the per-iteration loop then mirrors the object
        #: engine operation for operation (see the module docstring).
        self._exact_kv = bool(sim.swap)
        if self._exact_kv:
            self.kv = accountant
        else:
            self.kv = _KvPool(
                page_tokens=accountant.page_tokens,
                total_pages=accountant.total_pages,
                budget_bytes=accountant.budget_bytes,
            )
        self.events: "list[SimEvent] | None" = [] if record_events else None
        if kv_bounds is not None:
            for provider in sim.providers.values():
                provider.prepare(*kv_bounds)

        # Decode-cost table (dense lists + prefix sums); absent under
        # exact pricing or unknown KV bounds, in which case every decode
        # is priced through the provider (correct, per-iteration only).
        self._tbl_lo, self._tbl_hi = 1, 0
        self._lat = None
        self._lat_max = 0.0
        self._floor_free = False
        self._base: "tuple | None" = None
        self._np_prefix: "list | None" = None
        # Prefix-sum columns; absent on table-less runs (the absorbers
        # only index them for decode segments, which a table-less run
        # never prices in closed form — the ``plat is None`` guards).
        self._plat = self._pem = self._pep = self._pen = self._pfl = None
        if not sim.provider.exact and kv_bounds is not None:
            self._install_table(sim.provider.decode_table(*kv_bounds))

        # Request columns, indexed by row.  Rows recycle via _free.
        self._arr: list = []
        self._inp: list = []
        self._out: list = []
        self._cls: list = []
        self._rid: list = []
        self._prefilled: list = []
        self._generated: list = []
        self._first: list = []
        self._held: list = []
        self._pfx: list = []
        self._pft: list = []
        self._mdl: list = []
        self._free: list = []
        # Typed shadows of the immutable-per-row columns (arrival, prompt,
        # output).  They expose the buffer protocol, so the arrival
        # absorber reads a whole pending window through one zero-copy
        # ``np.frombuffer`` + fancy index instead of a Python loop.
        self._arr_t = array("d")
        self._inp_t = array("q")
        self._out_t = array("q")

        self.pending: "deque[int]" = deque()
        # A deque, not a list: under backlog (the regime megatrace
        # targets) arrival-order admission pops the head of a queue that
        # can hold most of the trace, and list.pop(0) there is O(n) per
        # admission — quadratic overall.
        self.waiting: "deque[int]" = deque()
        self.active: "list[int]" = []
        #: Swapped-out rows, oldest first; their private KV pages live in
        #: host DRAM and their progress survives until swap-in.
        self.swapped: "list[int]" = []
        #: Active rows still prefilling (generated == 0), maintained
        #: incrementally so the macro-eligibility test is O(1).
        self._num_prefilling = 0

        self._detail = sim.per_request_detail
        self.completed: list[RequestMetrics] = []
        # Pooled-only completion columns (no-detail mode): compact typed
        # arrays, converted to numpy once at finalization.
        self._done_arrival = array("d")
        self._done_first = array("d")
        self._done_completion = array("d")
        self._done_out = array("q")
        self._done_cls = array("q") if sim.slo_targets is not None else None
        # Pooled model indices (multi-model runs with SLO targets only):
        # feeds the per-(model, class) attainment table at finalization.
        self._done_mdl = (
            array("q")
            if sim.multi_model and sim.slo_targets is not None
            else None
        )
        # Bound append methods: _record_completion runs once per request.
        self._push_done = (
            self._done_arrival.append,
            self._done_first.append,
            self._done_completion.append,
            self._done_out.append,
            None if self._done_cls is None else self._done_cls.append,
        )

        self.clock = 0.0
        self.busy = 0.0
        self._energy_mem = 0.0
        self._energy_pim = 0.0
        self._energy_npu = 0.0
        self.flops = 0.0
        self.prefill_passes = 0
        self.decode_passes = 0
        self.decode_tokens = 0
        self.admissions = 0
        self.peak_active = 0
        self.preemptions = 0
        self.recomputed_tokens = 0
        self.swap_outs = 0
        self.swap_ins = 0
        self.swapped_pages_total = 0
        self.offered = 0
        self._outstanding = 0
        self.first_arrival: "float | None" = None
        self.finished = False
        self.dead = False
        self._last_until: "float | None" = None
        self.phase_s: dict[str, float] = {
            "admit": 0.0,
            "prefill": 0.0,
            "decode": 0.0,
            "absorb": 0.0,
            "metrics": 0.0,
        }
        self._step_kind = "decode"

        policy = sim.policy
        self._ptype = type(policy)
        self._arrival_order = self._ptype is not SrptPolicy and (
            self._ptype is not PriorityPolicy
        )
        self._policy_cap = (
            1 if isinstance(policy, FcfsPolicy) else policy.max_batch
        )
        # Per-class admission reservations (tenant isolation); None keeps
        # the legacy admission order bit for bit.
        self._shares = (
            policy._reservations if self._ptype is PriorityPolicy else None
        )
        self._page_tokens = self.kv.page_tokens
        self._is_decoder = sim.model.is_decoder
        self._optimistic = sim.admission == "optimistic"
        self._batch_share = sim.batch_share
        # True when _step may take the monolithic-prefill shortcut: the
        # conditions are all fixed for the lifetime of the run.
        self._mono_fast = (
            sim.chunk_tokens == 0
            and self.events is None
            and self._arrival_order
            and not sim.multi_model
        )
        self._chunk_costs: dict = {}
        # Multi-model residency: the per-iteration loop restricts each
        # pass to the resident model's rows and pays a weight swap when
        # the active model changes (the row twin of the object engine's
        # sticky-resident scheduling).  The decode table prices the
        # default model only, so a non-default resident stands the table
        # down and prices through its own provider; the base and
        # chunk-cost caches swap with the weights.
        self._multi = sim.multi_model
        self.resident_model = sim.model.name
        self._provider = sim.provider
        self.model_swaps = 0
        self.model_swap_s = 0.0
        if self._multi:
            self._tbl_bounds = (self._tbl_lo, self._tbl_hi)
            self._bases: dict = (
                {} if self._base is None else {sim.model.name: self._base}
            )
            self._chunks_by_model = {sim.model.name: self._chunk_costs}
            self._model_names = tuple(member.name for member in sim.models)
            self._model_pos = {
                name: position
                for position, name in enumerate(self._model_names)
            }
        # Arrival-batched absorption gates (fixed for the run's lifetime).
        # _absorb_ok: whole idle-device arrival windows may be served in
        # closed form.  Requires monolithic prefill and no event log; a
        # table is only needed for decode runs, so table-less runs (e.g.
        # summarization, where every request decodes zero tokens past the
        # prefill) still qualify — coverage masking excludes any request
        # the table cannot price.  A non-floor-free table is excluded:
        # isolated requests never hit a floor, but the per-arrival
        # reference path would run per-iteration there and absorption
        # must not change which path produced the numbers.
        self._absorb_ok = (
            self.arrival_batching
            and self.events is None
            and sim.chunk_tokens == 0
            and not self._exact_kv
            and not sim.multi_model
            and (self._floor_free or self._lat is None)
        )
        # _fcfs_absorb: concurrency-1 arrival-order service is a Lindley
        # recursion — queued arrivals absorb too, no isolation test.
        self._fcfs_absorb = (
            self._absorb_ok and self._arrival_order and self._policy_cap == 1
        )
        # _burst_ok: clumps of overlapping arrivals run through the
        # scalar burst runner (a specialization of the generic loop),
        # valid under arrival-order admission with worst-case KV grants
        # and a floor-free table.
        self._burst_ok = (
            self._absorb_ok
            and self._floor_free
            and self._arrival_order
            and not self._optimistic
            and self._policy_cap > 1
        )

    # ------------------------------------------------------------------
    def _install_table(self, table) -> None:
        self._tbl_lo, self._tbl_hi = table.kv_lo, table.kv_hi
        (self._lat, self._em, self._ep, self._en, self._fl) = table.columns()
        (
            self._plat,
            self._pem,
            self._pep,
            self._pen,
            self._pfl,
        ) = table.prefix_sums()
        # Numpy twins of the prefix sums (same floats: prefix_sums() is a
        # tolist() of exactly this cumsum) for the vectorized arrival
        # absorber, which prices whole windows of decode runs at once.
        self._np_prefix = []
        for column in (
            table.latency,
            table.energy_memory,
            table.energy_pim,
            table.energy_npu,
            table.flops,
        ):
            prefix = np.empty(len(column) + 1, dtype=np.float64)
            prefix[0] = 0.0
            np.cumsum(column, out=prefix[1:])
            self._np_prefix.append(prefix)
        self._floor_free = table.floor_free
        self._base = table.base
        # Largest single-iteration latency on the table: a per-step cost
        # can never exceed batch * max - shared, so macro budget caps that
        # provably cannot bind are dismissed with one multiply.
        self._lat_max = max(self._lat)

    def _base_cost(self) -> tuple:
        if self._base is None:
            cost = self._provider.base()
            self._base = (
                cost.latency_s,
                cost.energy.normal_memory_j,
                cost.energy.pim_op_j,
                cost.energy.npu_cores_j,
                cost.flops,
            )
            if self._multi:
                self._bases[self.resident_model] = self._base
        return self._base

    # ------------------------------------------------------------------
    # Row management
    # ------------------------------------------------------------------
    def _new_row(self, request: Request) -> int:
        if self._free:
            row = self._free.pop()
            self._arr[row] = request.arrival_s
            self._inp[row] = request.input_tokens
            self._out[row] = request.output_tokens
            self._arr_t[row] = request.arrival_s
            self._inp_t[row] = request.input_tokens
            self._out_t[row] = request.output_tokens
            self._cls[row] = request.priority_class
            self._rid[row] = request.request_id
            self._prefilled[row] = 0
            self._generated[row] = 0
            self._first[row] = 0.0
            self._held[row] = 0
            self._pfx[row] = request.prefix_id
            self._pft[row] = request.prefix_tokens
            self._mdl[row] = request.model
            return row
        row = len(self._arr)
        self._arr.append(request.arrival_s)
        self._inp.append(request.input_tokens)
        self._out.append(request.output_tokens)
        self._arr_t.append(request.arrival_s)
        self._inp_t.append(request.input_tokens)
        self._out_t.append(request.output_tokens)
        self._cls.append(request.priority_class)
        self._rid.append(request.request_id)
        self._prefilled.append(0)
        self._generated.append(0)
        self._first.append(0.0)
        self._held.append(0)
        self._pfx.append(request.prefix_id)
        self._pft.append(request.prefix_tokens)
        self._mdl.append(request.model)
        return row

    def _request(self, row: int) -> Request:
        return Request(
            request_id=self._rid[row],
            arrival_s=self._arr[row],
            input_tokens=self._inp[row],
            output_tokens=self._out[row],
            priority_class=self._cls[row],
            prefix_id=self._pfx[row],
            prefix_tokens=self._pft[row],
            model=self._mdl[row],
        )

    def _pages_for(self, tokens: int) -> int:
        return -(-tokens // self._page_tokens)

    # ------------------------------------------------------------------
    # SimulationRun surface: offers and router-visible state
    # ------------------------------------------------------------------
    def offer(self, request: Request) -> None:
        """Inject one request; offers must come in ``(arrival, id)`` order."""
        if self.finished:
            raise ValueError("cannot offer a request to a finished run")
        if self.dead:
            raise ValueError("cannot offer a request to a failed replica")
        if request.model:
            config = self.sim._config_for(request)
            if not config.is_decoder and request.output_tokens > 1:
                raise ValueError(
                    f"{config.name} is not a decoder; serving traces for it "
                    "must be summarization-only (output_tokens == 1)"
                )
        elif not self._is_decoder and request.output_tokens > 1:
            raise ValueError(
                f"{self.sim.model.name} is not a decoder; serving traces for it "
                "must be summarization-only (output_tokens == 1)"
            )
        pending = self.pending
        if pending:
            last = pending[-1]
            if (request.arrival_s, request.request_id) < (
                self._arr[last],
                self._rid[last],
            ):
                raise ValueError(
                    "requests must be offered in (arrival_s, request_id) order"
                )
        if request.prefix_id >= 0 and not self._exact_kv:
            self._ensure_exact_kv()
        pending.append(self._new_row(request))
        self.offered += 1
        self._outstanding += request.input_tokens + request.output_tokens
        if self.first_arrival is None:
            self.first_arrival = request.arrival_s

    def offer_many(self, requests) -> None:
        """Bulk :meth:`offer`: same guards and ordering check, hoisted out
        of the per-request loop so streaming a megatrace does not pay a
        method call and four attribute lookups per arrival."""
        if not requests:
            return
        if self.finished:
            raise ValueError("cannot offer a request to a finished run")
        if self.dead:
            raise ValueError("cannot offer a request to a failed replica")
        pending = self.pending
        if (
            isinstance(requests, (list, tuple))
            and len(requests) >= 512
            and not self._free
        ):
            self._offer_bulk(requests)
            return
        push = pending.append
        arr = self._arr
        inp = self._inp
        out = self._out
        arr_t = self._arr_t
        inp_t = self._inp_t
        out_t = self._out_t
        cls = self._cls
        rid = self._rid
        prefilled = self._prefilled
        generated = self._generated
        first = self._first
        held = self._held
        pfx = self._pfx
        pft = self._pft
        mdl = self._mdl
        free = self._free
        pop = free.pop
        is_decoder = self._is_decoder
        if pending:
            last = pending[-1]
            last_key = (arr[last], rid[last])
        else:
            last_key = None
        added = 0
        outstanding = 0
        for request in requests:
            arrival = request.arrival_s
            request_id = request.request_id
            output_tokens = request.output_tokens
            if request.model:
                config = self.sim._config_for(request)
                if not config.is_decoder and output_tokens > 1:
                    raise ValueError(
                        f"{config.name} is not a decoder; serving traces "
                        "for it must be summarization-only (output_tokens == 1)"
                    )
            elif not is_decoder and output_tokens > 1:
                raise ValueError(
                    f"{self.sim.model.name} is not a decoder; serving traces "
                    "for it must be summarization-only (output_tokens == 1)"
                )
            key = (arrival, request_id)
            if last_key is not None and key < last_key:
                raise ValueError(
                    "requests must be offered in (arrival_s, request_id) order"
                )
            last_key = key
            if request.prefix_id >= 0 and not self._exact_kv:
                self._ensure_exact_kv()
            input_tokens = request.input_tokens
            if free:
                row = pop()
                arr[row] = arrival
                inp[row] = input_tokens
                out[row] = output_tokens
                arr_t[row] = arrival
                inp_t[row] = input_tokens
                out_t[row] = output_tokens
                cls[row] = request.priority_class
                rid[row] = request_id
                prefilled[row] = 0
                generated[row] = 0
                first[row] = 0.0
                held[row] = 0
                pfx[row] = request.prefix_id
                pft[row] = request.prefix_tokens
                mdl[row] = request.model
            else:
                row = len(arr)
                arr.append(arrival)
                inp.append(input_tokens)
                out.append(output_tokens)
                arr_t.append(arrival)
                inp_t.append(input_tokens)
                out_t.append(output_tokens)
                cls.append(request.priority_class)
                rid.append(request_id)
                prefilled.append(0)
                generated.append(0)
                first.append(0.0)
                held.append(0)
                pfx.append(request.prefix_id)
                pft.append(request.prefix_tokens)
                mdl.append(request.model)
            push(row)
            added += 1
            outstanding += input_tokens + output_tokens
            if self.first_arrival is None:
                self.first_arrival = arrival
        self.offered += added
        self._outstanding += outstanding

    def _offer_bulk(self, requests) -> None:
        """Columnar append for large sorted batches: one list comprehension
        per column plus a vectorized ordering check, instead of a Python
        branch-and-append chain per request.  Only entered when the free
        list is empty, so every new row lands at the tail and the typed
        shadows can be extended wholesale."""
        arrs = [r.arrival_s for r in requests]
        rids = [r.request_id for r in requests]
        np_arr = np.array(arrs, dtype=np.float64)
        diffs = np.diff(np_arr)
        if len(requests) > 1 and not np.all(diffs >= 0.0):
            raise ValueError(
                "requests must be offered in (arrival_s, request_id) order"
            )
        ties = np.nonzero(diffs == 0.0)[0] if len(requests) > 1 else ()
        for i in ties:
            if rids[i + 1] < rids[i]:
                raise ValueError(
                    "requests must be offered in (arrival_s, request_id) order"
                )
        pending = self.pending
        if pending:
            last = pending[-1]
            if (arrs[0], rids[0]) < (self._arr[last], self._rid[last]):
                raise ValueError(
                    "requests must be offered in (arrival_s, request_id) order"
                )
        outs = [r.output_tokens for r in requests]
        mdls = [r.model for r in requests]
        if any(mdls):
            sim = self.sim
            for r in requests:
                config = sim._config_for(r)
                if not config.is_decoder and r.output_tokens > 1:
                    raise ValueError(
                        f"{config.name} is not a decoder; serving traces "
                        "for it must be summarization-only (output_tokens == 1)"
                    )
        elif not self._is_decoder and max(outs) > 1:
            raise ValueError(
                f"{self.sim.model.name} is not a decoder; serving traces "
                "for it must be summarization-only (output_tokens == 1)"
            )
        inps = [r.input_tokens for r in requests]
        pfxs = [r.prefix_id for r in requests]
        if not self._exact_kv and max(pfxs) >= 0:
            self._ensure_exact_kv()
        n = len(requests)
        row0 = len(self._arr)
        self._arr += arrs
        self._inp += inps
        self._out += outs
        self._cls += [r.priority_class for r in requests]
        self._rid += rids
        self._prefilled += [0] * n
        self._generated += [0] * n
        self._first += [0.0] * n
        self._held += [0] * n
        self._pfx += pfxs
        self._pft += [r.prefix_tokens for r in requests]
        self._mdl += mdls
        self._arr_t.frombytes(np_arr.tobytes())
        np_inp = np.array(inps, dtype=np.int64)
        np_out = np.array(outs, dtype=np.int64)
        self._inp_t.frombytes(np_inp.tobytes())
        self._out_t.frombytes(np_out.tobytes())
        pending.extend(range(row0, row0 + n))
        self.offered += n
        self._outstanding += int(np_inp.sum() + np_out.sum())
        if self.first_arrival is None:
            self.first_arrival = arrs[0]

    def _ensure_exact_kv(self) -> None:
        """Switch to the reference-counting accountant (first shared-prefix
        request seen).  Current holdings carry over: every active row's
        private pages become accountant reservations — the fast paths
        maintained ``reserved_pages == sum(active holdings)``, so the
        pool-wide count is unchanged — and the high-water mark survives.
        """
        if self._exact_kv:
            return
        accountant = self.sim._new_accountant()
        rid, held = self._rid, self._held
        for row in self.active:
            accountant._reserved[rid[row]] = held[row]
        accountant.peak_reserved_pages = self.kv.peak_reserved_pages
        self.kv = accountant
        self._exact_kv = True

    @property
    def outstanding_requests(self) -> int:
        """Requests routed here and not yet completed."""
        return (
            len(self.pending)
            + len(self.waiting)
            + len(self.active)
            + len(self.swapped)
        )

    @property
    def outstanding_tokens(self) -> int:
        """Prompt + output tokens not yet computed across live requests.

        Maintained incrementally (offer/chunk/decode/preempt/fail), so it
        is O(1) here yet integer-identical to the object engine's O(n)
        sums — the cluster's routers see the same numbers either way.
        """
        return self._outstanding

    @property
    def energy(self) -> EnergyBreakdown:
        return EnergyBreakdown(
            normal_memory_j=self._energy_mem,
            pim_op_j=self._energy_pim,
            npu_cores_j=self._energy_npu,
        )

    # ------------------------------------------------------------------
    # Event emission (identical shape to the object engine's)
    # ------------------------------------------------------------------
    def _emit(
        self,
        kind: str,
        latency: float = 0.0,
        request_id: "int | None" = None,
        tokens: int = 0,
        decode_ids: tuple = (),
        model: str = "",
    ) -> None:
        if self.events is not None:
            self.events.append(
                SimEvent(
                    kind=kind,
                    clock_s=self.clock,
                    latency_s=latency,
                    request_id=request_id,
                    tokens=tokens,
                    decode_ids=decode_ids,
                    active=len(self.active),
                    waiting=len(self.waiting),
                    kv_reserved_pages=self.kv.reserved_pages,
                    kv_total_pages=self.kv.total_pages,
                    model=model,
                )
            )

    # ------------------------------------------------------------------
    # Policy decisions, re-derived over columns (bit-equal: integer keys)
    # ------------------------------------------------------------------
    def _admit_index(self, waiting: "deque[int]") -> int:
        # Iterates values rather than indexing: waiting is a deque, where
        # positional access is O(n).  First minimum wins, as in the
        # object policies' (key, index) tie-break.
        ptype = self._ptype
        if ptype is SrptPolicy:
            inp, out = self._inp, self._out
            best, best_key = 0, None
            for i, row in enumerate(waiting):
                key = inp[row] + out[row]
                if best_key is None or key < best_key:
                    best, best_key = i, key
            return best
        if ptype is PriorityPolicy:
            cls = self._cls
            best, best_key = 0, None
            for i, row in enumerate(waiting):
                key = cls[row]
                if best_key is None or key < best_key:
                    best, best_key = i, key
            return best
        return 0

    def _admit_allowed(self) -> "list[int]":
        """Waiting indices admissible under the per-class reservations —
        the row twin of ``PriorityPolicy.admit_filter`` (integer logic,
        so the admitted order is bit-equal to the object engine's)."""
        reserved = self._shares
        cls = self._cls
        active_by_class: "dict[int, int]" = {}
        for row in self.active:
            c = cls[row]
            active_by_class[c] = active_by_class.get(c, 0) + 1
        waiting_classes = {cls[row] for row in self.waiting}
        total = len(self.active)
        max_batch = self._policy_cap
        allowed: "list[int]" = []
        for index, row in enumerate(self.waiting):
            c = cls[row]
            quota = reserved[c] if c < len(reserved) else 0
            if active_by_class.get(c, 0) < quota:
                allowed.append(index)
                continue
            pending = sum(
                max(
                    0,
                    (reserved[other] if other < len(reserved) else 0)
                    - active_by_class.get(other, 0),
                )
                for other in waiting_classes
                if other != c
            )
            if total + pending < max_batch:
                allowed.append(index)
        return allowed

    def _remaining(self, row: int) -> int:
        return (self._inp[row] - self._prefilled[row]) + (
            self._out[row] - self._generated[row]
        )

    def _prefill_index(self, prefilling: "list[int]") -> int:
        ptype = self._ptype
        if ptype is SrptPolicy:
            return min(
                range(len(prefilling)),
                key=lambda i: (self._remaining(prefilling[i]), i),
            )
        if ptype is PriorityPolicy:
            cls = self._cls
            return min(
                range(len(prefilling)), key=lambda i: (cls[prefilling[i]], i)
            )
        return 0

    def _decode_batch(self, decodable: "list[int]") -> "list[int]":
        ptype = self._ptype
        cap = self._policy_cap
        if ptype is SrptPolicy:
            order = sorted(
                range(len(decodable)),
                key=lambda i: (self._remaining(decodable[i]), i),
            )
            return [decodable[i] for i in order[:cap]]
        if ptype is PriorityPolicy:
            cls = self._cls
            order = sorted(
                range(len(decodable)), key=lambda i: (cls[decodable[i]], i)
            )
            return [decodable[i] for i in order[:cap]]
        return decodable[:cap]

    # ------------------------------------------------------------------
    # Costs
    # ------------------------------------------------------------------
    def _decode_cost(self, kv: int) -> tuple:
        """(latency, mem_j, pim_j, npu_j, flops) — bit-equal to decode()."""
        if self._tbl_lo <= kv <= self._tbl_hi:
            index = kv - self._tbl_lo
            return (
                self._lat[index],
                self._em[index],
                self._ep[index],
                self._en[index],
                self._fl[index],
            )
        cost = self._provider.decode(kv)
        return (
            cost.latency_s,
            cost.energy.normal_memory_j,
            cost.energy.pim_op_j,
            cost.energy.npu_cores_j,
            cost.flops,
        )

    def _chunk_cost(self, prefix: int, chunk: int) -> tuple:
        key = (prefix, chunk)
        cached = self._chunk_costs.get(key)
        if cached is None:
            cost = self._provider.prefill_chunk(prefix, chunk)
            cached = (
                cost.latency_s,
                cost.energy.normal_memory_j,
                cost.energy.pim_op_j,
                cost.energy.npu_cores_j,
                cost.flops,
            )
            self._chunk_costs[key] = cached
        return cached

    def _fused_scalar(
        self, carrier: "tuple | None", costs: "list[tuple]"
    ) -> tuple:
        """Scalar twin of ``ServingSimulator._fused_iteration``.

        Same operations in the same order on the same values (table
        entries are bit-equal to provider costs), so the result is
        bit-identical to the object engine's.
        """
        if carrier is None and len(costs) == 1:
            return costs[0]
        if carrier is not None and not costs:
            return carrier
        base = self._base_cost()
        if carrier is None:
            parts = costs
            shared = self.sim.batch_share * (len(costs) - 1)
        else:
            parts = [carrier, *costs]
            shared = self.sim.batch_share * len(costs)
        latency = sum(cost[0] for cost in parts) - shared * base[0]
        floor = max(cost[0] for cost in parts)
        if floor > latency:
            latency = floor
        out = [latency, 0.0, 0.0, 0.0, 0.0]
        for component in (1, 2, 3):
            saved = shared * base[component]
            total = sum(cost[component] for cost in parts)
            peak = max(cost[component] for cost in parts)
            value = total - saved
            out[component] = peak if peak > value else value
        out[4] = sum(cost[4] for cost in parts)
        return tuple(out)

    # ------------------------------------------------------------------
    # The discrete-event loop
    # ------------------------------------------------------------------
    def advance_until(self, until: "float | None") -> None:
        """Run every pass *starting* before ``until`` (all work if ``None``)."""
        if self.finished:
            raise ValueError("cannot advance a finished run")
        if until is not None:
            if self._last_until is not None and until < self._last_until:
                raise ValueError(
                    f"advance_until moved backwards: target {until:.6f}s is "
                    f"before the previous target {self._last_until:.6f}s"
                )
            self._last_until = until
        profile = self.sim.profile
        arr = self._arr
        waiting = self.waiting
        active = self.active
        swapped = self.swapped
        pending = self.pending
        cap = self._policy_cap
        # Exact mode (sharing/swap) may have been entered by an offer since
        # the last advance; the fast paths stand down from then on.
        macro_ok = (
            self.events is None
            and self._floor_free
            and not self._exact_kv
            and not self._multi
        )
        absorb_ok = self._absorb_ok and not self._exact_kv
        while True:
            while pending and arr[pending[0]] <= self.clock:
                waiting.append(pending.popleft())
            if not waiting and not active and not swapped:
                # Idle device, future arrivals only: the underload fast
                # path serves whole arrival windows in closed form and
                # falls back here the moment a window element needs the
                # exact per-arrival machinery.
                if absorb_ok and pending:
                    if profile:
                        start = perf_counter()
                        progressed = self._absorb_arrivals(until)
                        self.phase_s["absorb"] += perf_counter() - start
                    else:
                        progressed = self._absorb_arrivals(until)
                    if progressed:
                        continue
                if pending and (until is None or arr[pending[0]] <= until):
                    self.clock = arr[pending[0]]
                    self._emit("idle")
                    continue
                return
            if until is not None and self.clock >= until:
                return
            # _admit's own loop condition, checked inline: with a full
            # batch or an empty (waiting + swapped) queue the call would
            # be a no-op, and this loop runs once per pass.
            if (waiting or swapped) and len(active) < cap:
                if profile:
                    start = perf_counter()
                    self._admit()
                    self.phase_s["admit"] += perf_counter() - start
                else:
                    self._admit()
            if not active:
                raise RuntimeError(
                    f"policy {self.sim.policy.name!r} left the device idle with "
                    f"{len(self.waiting)} admissible request(s) waiting"
                )  # pragma: no cover - defensive, no shipped policy does this
            # Macro-stepping: all-decode batches with an event-free run and
            # a floor-free table advance many iterations in O(B).
            if macro_ok and not self._num_prefilling:
                if profile:
                    start = perf_counter()
                    stepped = self._macro_step(until)
                    self.phase_s["decode"] += perf_counter() - start
                else:
                    stepped = self._macro_step(until)
                if stepped:
                    continue
            if profile:
                start = perf_counter()
                self._step()
                self.phase_s[self._step_kind] += perf_counter() - start
            else:
                self._step()

    # ------------------------------------------------------------------
    def _admit(self) -> None:
        if self._exact_kv:
            # Mirror of the object engine's _admit: swapped requests come
            # back first (they hold completed work a recompute would
            # repay), then new admissions; when the device is idle with
            # the pool pinned by resident shared-prefix pages, sacrifice
            # the youngest swapped request for recompute until the oldest
            # fits again (each round shrinks the swap set, and a lone
            # swapped request always fits — fits_alone held at admission).
            self._swap_in_ready()
            self._admit_exact()
            while not self.active and self.swapped:
                if self.kv.can_swap_in(self._rid[self.swapped[0]]):
                    self._swap_in_head()
                else:
                    self._preempt_swapped(len(self.swapped) - 1)
                self._admit_exact()
            return
        kv = self.kv
        waiting, active = self.waiting, self.active
        optimistic = self._optimistic
        cap = self._policy_cap
        arrival_order = self._arrival_order
        page_tokens = self._page_tokens
        shares = self._shares
        while waiting and len(active) < cap:
            if shares is None:
                index = 0 if arrival_order else self._admit_index(waiting)
            else:
                allowed = self._admit_allowed()
                if not allowed:
                    break
                index = allowed[
                    self._admit_index([waiting[i] for i in allowed])
                ]
            row = waiting[index]
            total = self._inp[row] + self._out[row]
            total_pages = -(-total // page_tokens)
            if total_pages > kv.total_pages:
                raise ValueError(
                    f"request {self._rid[row]} needs "
                    f"{total_pages} KV pages but the "
                    f"pool holds {kv.total_pages}; it can never be served "
                    f"(raise kv_fraction or the budget)"
                )
            pages = (
                -(-self._inp[row] // page_tokens) if optimistic else total_pages
            )
            if pages > kv.free_pages:
                break
            kv.commit(pages)
            self._held[row] = pages
            if index == 0:
                waiting.popleft()
            else:
                del waiting[index]
            active.append(row)
            self._num_prefilling += 1
            self.admissions += 1
            if len(active) > self.peak_active:
                self.peak_active = len(active)
            if self.events is not None:
                self._emit("admit", request_id=self._rid[row], tokens=pages)

    def _admit_exact(self) -> None:
        """Admission through the reference-counting accountant — the row
        twin of the object engine's ``_admit_waiting`` (shared-prefix
        requests charge only their unique new pages)."""
        kv = self.kv
        waiting, active = self.waiting, self.active
        optimistic = self._optimistic
        cap = self._policy_cap
        arrival_order = self._arrival_order
        shares = self._shares
        while waiting and len(active) < cap:
            if shares is None:
                index = 0 if arrival_order else self._admit_index(waiting)
            else:
                allowed = self._admit_allowed()
                if not allowed:
                    break
                index = allowed[
                    self._admit_index([waiting[i] for i in allowed])
                ]
            row = waiting[index]
            total = self._inp[row] + self._out[row]
            if not kv.fits_alone(total):
                raise ValueError(
                    f"request {self._rid[row]} needs "
                    f"{kv.pages_for(total)} KV pages but the "
                    f"pool holds {kv.total_pages}; it can never be served "
                    f"(raise kv_fraction or the budget)"
                )
            commit_tokens = self._inp[row] if optimistic else total
            if not kv.can_reserve(commit_tokens, self._pfx[row], self._pft[row]):
                break
            pages = kv.reserve(
                self._rid[row], commit_tokens, self._pfx[row], self._pft[row]
            )
            if index == 0:
                waiting.popleft()
            else:
                del waiting[index]
            active.append(row)
            self._num_prefilling += 1
            self.admissions += 1
            if len(active) > self.peak_active:
                self.peak_active = len(active)
            self._emit("admit", request_id=self._rid[row], tokens=pages)

    def _swap_in_ready(self) -> None:
        """Restore swapped-out rows, oldest first, while they fit."""
        cap = self._policy_cap
        while self.swapped and len(self.active) < cap:
            if not self.kv.can_swap_in(self._rid[self.swapped[0]]):
                break
            self._swap_in_head()

    def _swap_in_head(self) -> None:
        """Pay the link transfer and re-activate the oldest swapped row."""
        row = self.swapped.pop(0)
        request_id = self._rid[row]
        pages = self.kv.swap_in(request_id)
        latency = self._swap_latency(pages)
        self.clock += latency
        self.busy += latency
        self.active.append(row)
        if self._generated[row] == 0:
            self._num_prefilling += 1
        self.swap_ins += 1
        self.swapped_pages_total += pages
        if len(self.active) > self.peak_active:
            self.peak_active = len(self.active)
        self._emit("swap_in", latency=latency, request_id=request_id, tokens=pages)

    def _swap_out(self, victim: int) -> None:
        """Move a victim row's private pages to host DRAM over the link
        (its prefill/decode progress survives; it resumes via swap-in)."""
        request_id = self._rid[victim]
        pages = self.kv.swap_out(request_id)
        self.active.remove(victim)
        if self._generated[victim] == 0:
            self._num_prefilling -= 1
        latency = self._swap_latency(pages)
        self.clock += latency
        self.busy += latency
        self.swapped.append(victim)
        self.swap_outs += 1
        self.swapped_pages_total += pages
        if self.swap_outs > 50 * max(self.offered, 1):  # pragma: no cover
            raise RuntimeError(
                f"swap livelock: {self.swap_outs} swap-outs over "
                f"{self.offered} offered request(s)"
            )
        self._emit(
            "swap_out", latency=latency, request_id=request_id, tokens=pages
        )

    def _preempt_swapped(self, index: int) -> None:
        """Preempt a swapped-out row: discard its host copy, recompute.

        The last-resort path when resident shared-prefix pages pin the
        pool — releasing the row drops its prefix reference, freeing the
        shared pages once the last member leaves.
        """
        victim = self.swapped.pop(index)
        request_id = self._rid[victim]
        pages = self.kv.release(request_id)
        self._held[victim] = 0
        self.preemptions += 1
        lost = self._prefilled[victim] + self._generated[victim]
        self.recomputed_tokens += lost
        self._outstanding += lost
        if self.preemptions > 50 * max(self.offered, 1):  # pragma: no cover
            raise RuntimeError(
                f"preemption livelock: {self.preemptions} preemptions over "
                f"{self.offered} offered request(s)"
            )
        self._prefilled[victim] = 0
        self._generated[victim] = 0
        self._first[victim] = 0.0
        self._requeue(victim)
        self._emit("preempt", request_id=request_id, tokens=pages)

    def _swap_latency(self, pages: int) -> float:
        """Transfer time of ``pages`` KV pages over the host link."""
        return pages * self.kv.page_bytes * 8.0 / (self.sim.link_gbps * 1e9)

    def _release_pages(self, row: int) -> None:
        """Return a completed/failed row's pages to the pool (both modes)."""
        if self._exact_kv:
            self.kv.release(self._rid[row])
        else:
            self.kv.reserved_pages -= self._held[row]
        self._held[row] = 0

    # ------------------------------------------------------------------
    # Multi-model residency (mirror of the object engine's sticky-resident
    # scheduling; only reached when the simulator hosts a model set)
    # ------------------------------------------------------------------
    def _model_of_row(self, row: int) -> str:
        """The model a row runs on ("" in a request means the default)."""
        return self._mdl[row] or self.sim.model.name

    def _sync_model(self) -> None:
        """Swap weights when no resident-model work is runnable."""
        resident = self.resident_model
        mdl = self._mdl
        default = self.sim.model.name
        for row in self.active:
            if (mdl[row] or default) == resident:
                return
        generated = self._generated
        prefilling = [row for row in self.active if generated[row] == 0]
        if prefilling:
            target = prefilling[self._prefill_index(prefilling)]
        else:
            decodable = [row for row in self.active if generated[row] > 0]
            batch = self._decode_batch(decodable)
            target = batch[0] if batch else decodable[0]
        self._swap_model(mdl[target] or default)

    def _swap_model(self, target: str) -> None:
        """Stream ``target``'s weights in over the host link (weight swap).

        Beyond the object engine's bookkeeping, the row engine re-points
        its cost caches: the decode table prices the default model only,
        so a non-default resident stands it down and prices through its
        own provider, and the base/chunk caches follow the weights.
        """
        sim = self.sim
        moved = sim._weight_bytes[target]
        latency = moved * 8.0 / (sim.link_gbps * 1e9)
        self.clock += latency
        self.busy += latency
        self.resident_model = target
        self._provider = sim.providers[target]
        self.model_swaps += 1
        self.model_swap_s += latency
        if target == sim.model.name:
            self._tbl_lo, self._tbl_hi = self._tbl_bounds
        else:
            self._tbl_lo, self._tbl_hi = 1, 0
        self._base = self._bases.get(target)
        self._chunk_costs = self._chunks_by_model.setdefault(target, {})
        self._emit("model_swap", latency=latency, tokens=moved, model=target)

    def _step(self) -> None:
        """One device iteration — the per-iteration (bit-exact) path."""
        generated = self._generated
        if self._num_prefilling and self._mono_fast:
            # Monolithic prefill with no piggyback batch under an
            # arrival-order policy: the head prefilling row runs alone and
            # the pass IS the carrier.  Pick it by direct scan and apply
            # it without the generic fused/emit machinery — at one such
            # pass per served request this is a first-order term of the
            # million-request budget.
            for row in self.active:
                if generated[row] == 0:
                    chunk = self._inp[row] - self._prefilled[row]
                    self._prefill_only_step(
                        row, chunk, self._chunk_cost(self._prefilled[row], chunk)
                    )
                    return
        sim = self.sim
        if self._multi:
            # Sticky-resident scheduling: restrict the pass to the
            # resident model's rows, paying a weight swap first when the
            # resident model has nothing runnable (object-engine mirror).
            self._sync_model()
            resident = self.resident_model
            mdl = self._mdl
            default = sim.model.name
            eligible = [
                row
                for row in self.active
                if (mdl[row] or default) == resident
            ]
            prefilling = [row for row in eligible if generated[row] == 0]
            decodable = [row for row in eligible if generated[row] > 0]
        elif self._num_prefilling == 0:
            prefilling: list[int] = []
            decodable = self.active
        else:
            prefilling = [row for row in self.active if generated[row] == 0]
            decodable = [row for row in self.active if generated[row] > 0]
        row: "int | None" = None
        carrier: "tuple | None" = None
        chunk = 0
        batch: list[int] = []
        if prefilling:
            row = prefilling[self._prefill_index(prefilling)]
            remaining = self._inp[row] - self._prefilled[row]
            chunk = (
                remaining
                if sim.chunk_tokens == 0
                else min(sim.chunk_tokens, remaining)
            )
            carrier = self._chunk_cost(self._prefilled[row], chunk)
            if sim.chunk_tokens and decodable:
                batch = self._decode_batch(decodable)
            elif sim.chunk_tokens == 0 and self.events is None:
                self._prefill_only_step(row, chunk, carrier)
                return
        else:
            batch = self._decode_batch(decodable)

        if self._optimistic and batch:
            requested = batch
            batch = self._grow_batch(batch, row)
            if carrier is None and not batch:
                head = requested[0]
                kv = self.kv
                if self._exact_kv:
                    held = kv.held_pages(self._rid[head])
                    need = kv.grow_need(
                        self._rid[head], self._inp[head] + generated[head]
                    )
                else:
                    held = self._held[head]
                    need = (
                        self._pages_for(self._inp[head] + generated[head]) - held
                    )
                raise RuntimeError(
                    "KV pool exhausted with preemption disabled: request "
                    f"{self._rid[head]} holds {held} page(s) and "
                    f"needs {need} more for its next decode, but only "
                    f"{kv.free_pages} of {kv.total_pages} pool page(s) are "
                    "free and no prefill can run (enable preempt or raise "
                    "the KV budget)"
                )

        inp = self._inp
        costs = [self._decode_cost(inp[r] + generated[r]) for r in batch]
        self._step_kind = "prefill" if carrier is not None else "decode"
        latency, e_mem, e_pim, e_npu, pass_flops = self._fused_scalar(
            carrier, costs
        )
        self.clock += latency
        self.busy += latency
        self._energy_mem += e_mem
        self._energy_pim += e_pim
        self._energy_npu += e_npu
        self.flops += pass_flops
        if carrier is not None:
            self.prefill_passes += 1
        if batch:
            self.decode_passes += 1
            self.decode_tokens += len(batch)
            self._outstanding -= len(batch)
        self._emit(
            "step",
            latency=latency,
            request_id=None if row is None else self._rid[row],
            tokens=chunk,
            decode_ids=tuple(self._rid[r] for r in batch),
        )

        finished: list[int] = []
        if row is not None:
            self._prefilled[row] += chunk
            self._outstanding -= chunk
            if self._prefilled[row] >= inp[row]:
                generated[row] = 1
                self._num_prefilling -= 1
                self._outstanding -= 1
                self._first[row] = self.clock
                if generated[row] >= self._out[row]:
                    finished.append(row)
        for r in batch:
            generated[r] += 1
            if generated[r] >= self._out[r]:
                finished.append(r)
        for r in finished:
            self.active.remove(r)
            self._release_pages(r)
            self._record_completion(r)
            self._emit("complete", request_id=self._rid[r])

    def _prefill_only_step(self, row: int, chunk: int, carrier: tuple) -> None:
        """Apply one monolithic-prefill pass (no decode batch, no events).

        A monolithic chunk always covers the whole remaining prompt, so
        the pass both runs and completes the prefill.
        """
        self._step_kind = "prefill"
        clock = self.clock + carrier[0]
        self.clock = clock
        self.busy += carrier[0]
        self._energy_mem += carrier[1]
        self._energy_pim += carrier[2]
        self._energy_npu += carrier[3]
        self.flops += carrier[4]
        self.prefill_passes += 1
        self._prefilled[row] += chunk
        self._generated[row] = 1
        self._num_prefilling -= 1
        self._outstanding -= chunk + 1
        self._first[row] = clock
        if self._out[row] <= 1:
            self.active.remove(row)
            self._release_pages(row)
            self._record_completion(row)

    # ------------------------------------------------------------------
    def _macro_step(self, until: "float | None") -> bool:
        """Advance up to the next behavior boundary in O(B) per probe.

        Returns ``False`` when this boundary cannot be macro-stepped (KV
        out of table range, or an optimistic grant that needs preemption)
        — the caller then runs one per-iteration step.
        """
        active = self.active
        batch_size = len(active)
        lo, hi = self._tbl_lo, self._tbl_hi
        inp, out, generated = self._inp, self._out, self._generated
        offsets = []
        append = offsets.append
        span = hi - lo + 1
        steps = span
        off_max = 0
        for row in active:
            offset = inp[row] + generated[row] - lo
            if offset < 0:
                return False
            append(offset)
            if offset > off_max:
                off_max = offset
            remaining = out[row] - generated[row]
            if remaining < steps:
                steps = remaining
        if steps > span - off_max:
            steps = span - off_max
        if steps < 1:
            return False

        optimistic = self._optimistic
        kvs = None
        if optimistic:
            # Largest k whose total page growth fits the free pool
            # (monotone in k).  k=0 means the grant needs preemption:
            # fall back to the per-iteration path, which runs it exactly.
            held = self._held
            free = self.kv.free_pages
            page_tokens = self._page_tokens
            kvs = [offset + lo for offset in offsets]

            def growth(j: int) -> int:
                need = 0
                for position, row in enumerate(active):
                    pages = -(-(kvs[position] + j - 1) // page_tokens)
                    delta = pages - held[row]
                    if delta > 0:
                        need += delta
                return need

            if growth(steps) > free:
                low, high = 0, steps  # growth(low) fits, growth(high) doesn't
                while high - low > 1:
                    mid = (low + high) // 2
                    if growth(mid) > free:
                        high = mid
                    else:
                        low = mid
                steps = low
                if steps < 1:
                    return False

        base = self._base  # a table is installed whenever macros run
        shared = self._batch_share * (batch_size - 1)
        prefix_lat = self._plat
        shared_lat = shared * base[0]

        # Budget caps: stop at `until` and, while the admission gate is
        # open, at the next pending arrival (at a full batch arrivals
        # merely queue — bulk-moved at the loop top after this macro
        # ends).  elapsed(j) is monotone in j, so capping by each budget
        # in turn equals one cap by the smallest budget.
        budget = None if until is None else until - self.clock
        if self.pending and batch_size < self._policy_cap:
            arrival_budget = self._arr[self.pending[0]] - self.clock
            if budget is None or arrival_budget < budget:
                budget = arrival_budget
        # Conservative dismissal: elapsed(steps) can never exceed
        # steps * batch * lat_max, so a budget above that bound cannot
        # bind and the exact O(B) scans are skipped.  The inflation
        # factor absorbs summation rounding (~n*eps << 1e-9) so the
        # dismissal is sound even when the bound is nearly tight.
        if budget is not None and (
            steps * batch_size * self._lat_max * 1.000000001 >= budget
        ):
            lat_start = 0.0
            total = 0.0
            for offset in offsets:
                lat_start += prefix_lat[offset]
                total += prefix_lat[offset + steps]
            if total - lat_start - steps * shared_lat >= budget:
                # Smallest j in [1, steps] with elapsed(j) >= budget.
                low, high = 0, steps  # elapsed(low) < budget <= elapsed(high)
                while high - low > 1:
                    mid = (low + high) // 2
                    elapsed = 0.0
                    for offset in offsets:
                        elapsed += prefix_lat[offset + mid]
                    elapsed = elapsed - lat_start - mid * shared_lat
                    if elapsed < budget:
                        low = mid
                    else:
                        high = mid
                steps = high

        j = steps
        prefix_em, prefix_ep = self._pem, self._pep
        prefix_en, prefix_fl = self._pen, self._pfl
        sum_lat = 0.0
        sum_em = 0.0
        sum_ep = 0.0
        sum_en = 0.0
        sum_fl = 0.0
        finished = None
        for offset, row in zip(offsets, active):
            offset_j = offset + j
            sum_lat += prefix_lat[offset_j] - prefix_lat[offset]
            sum_em += prefix_em[offset_j] - prefix_em[offset]
            sum_ep += prefix_ep[offset_j] - prefix_ep[offset]
            sum_en += prefix_en[offset_j] - prefix_en[offset]
            sum_fl += prefix_fl[offset_j] - prefix_fl[offset]
            new_generated = generated[row] + j
            generated[row] = new_generated
            if new_generated >= out[row]:
                if finished is None:
                    finished = [row]
                else:
                    finished.append(row)
        delta = sum_lat - j * shared_lat
        self.clock += delta
        self.busy += delta
        self._energy_mem += sum_em - j * shared * base[1]
        self._energy_pim += sum_ep - j * shared * base[2]
        self._energy_npu += sum_en - j * shared * base[3]
        self.flops += sum_fl
        self.decode_passes += j
        self.decode_tokens += j * batch_size
        self._outstanding -= j * batch_size

        kv = self.kv
        if optimistic:
            held = self._held
            page_tokens = self._page_tokens
            grown = 0
            for kv_now, row in zip(kvs, active):
                pages = -(-(kv_now + j - 1) // page_tokens)
                if pages > held[row]:
                    grown += pages - held[row]
                    held[row] = pages
            if grown:
                kv.commit(grown)
        if finished is not None:
            for row in finished:
                active.remove(row)
                kv.reserved_pages -= self._held[row]
                self._held[row] = 0
                self._record_completion(row)
        return True

    # ------------------------------------------------------------------
    # Underload fast path: arrival-batched absorption
    # ------------------------------------------------------------------
    #: Pending arrivals priced per columnar window.  Large enough to
    #: amortize the numpy fixed costs, small enough that a window build
    #: stays cache-resident.
    _ABSORB_WINDOW = 4096

    def _absorb_arrivals(self, until: "float | None") -> bool:
        """Serve arrivals straight off the pending queue while the device
        is idle, without running the discrete-event loop per pass.

        Preconditions (established by the caller): ``waiting`` and
        ``active`` are empty and the pending head arrives strictly after
        ``self.clock``.  Returns True when any work was applied; either
        way the caller re-enters the generic loop, which handles whatever
        the absorber refused (KV-blocked, off-table, preempting, or
        past-``until`` requests) on the exact per-arrival path.
        """
        if self._detail:
            progressed = False
            pending = self.pending
            while pending:
                if self._absorb_scalar(until):
                    progressed = True
                    continue
                if self._burst_ok:
                    status = self._run_burst(until)
                    if status:
                        progressed = True
                    if status == 1:
                        continue
                break
            return progressed
        progressed = False
        while self.pending:
            did, keep = self._absorb_window(until)
            progressed = progressed or did
            if not keep:
                break
        return progressed

    def _absorb_window(self, until: "float | None") -> "tuple[bool, bool]":
        """Absorb one columnar window of pending arrivals (pooled mode).

        Prices every request's whole lifetime (monolithic prefill + full
        decode run) from the table prefix sums in one vectorized shot,
        then walks the window: stretches of *isolated* requests (each one
        completing before the next arrives) are applied in closed form,
        overlapping clumps run through the scalar burst runner, and under
        concurrency-1 arrival-order policies queued stretches absorb via
        a vectorized Lindley recursion.  Returns ``(progressed,
        keep_going)``; ``keep_going`` means the whole window was consumed
        and another window may follow.
        """
        pending = self.pending
        arr = self._arr
        # Scalar pre-check of the head request: when the head itself
        # cannot absorb (and the burst runner cannot take it either),
        # skip the columnar window build entirely, keeping the absorber
        # O(1) on paths that retry it once per idle gap.
        head = pending[0]
        i_tok = self._inp[head]
        o = self._out[head]
        page_tokens = self._page_tokens
        head_pages = -(-(i_tok + o) // page_tokens)
        head_ok = head_pages <= self.kv.total_pages
        dec = 0.0
        if head_ok and o > 1:
            if self._np_prefix is None:
                head_ok = False
            else:
                beg = i_tok + 1 - self._tbl_lo
                if beg < 0 or beg + o - 1 > self._tbl_hi - self._tbl_lo + 1:
                    head_ok = False
                else:
                    dec = self._plat[beg + o - 1] - self._plat[beg]
        if head_ok:
            pre_head = self._chunk_costs.get((0, i_tok))
            if pre_head is None:
                pre_head = self._chunk_cost(0, i_tok)
            # Under a queued (concurrency-1 arrival-order) policy the head
            # may arrive while the previous window's tail is still being
            # served: service starts at the clock, not the arrival.  On
            # isolated-stretch policies an earlier-than-clock head is an
            # overlapping clump — the burst runner's regime.
            start = arr[head]
            if start < self.clock:
                if self._fcfs_absorb:
                    start = self.clock
                else:
                    head_ok = False
            completion = start + pre_head[0] + dec
            if until is not None and completion > until:
                head_ok = False
            elif not self._fcfs_absorb and len(pending) > 1:
                if arr[pending[1]] < completion:
                    head_ok = False
        if not head_ok:
            if self._burst_ok:
                status = self._run_burst(until)
                if status == 0:
                    return False, False
                return True, status == 1 and bool(pending)
            return False, False

        count = len(pending)
        window = self._ABSORB_WINDOW
        take = count if count < window else window
        rows_list = list(islice(pending, take + 1))
        peek = rows_list[take] if len(rows_list) > take else -1
        del rows_list[take:]
        rows = np.array(rows_list, dtype=np.int64)
        a = np.frombuffer(self._arr_t, dtype=np.float64)[rows]
        inp = np.frombuffer(self._inp_t, dtype=np.int64)[rows]
        out = np.frombuffer(self._out_t, dtype=np.int64)[rows]
        total_pages = -((inp + out) // -page_tokens)
        eligible = total_pages <= self.kv.total_pages
        steps = out - 1
        single = steps == 0
        prefix = self._np_prefix
        if prefix is not None:
            lo = self._tbl_lo
            span = self._tbl_hi - lo + 1
            beg_v = inp + 1 - lo
            run = ~single & (beg_v >= 0) & (beg_v + steps <= span)
            eligible &= single | run
            b = np.where(run, beg_v, 0)
            e = np.where(run, beg_v + steps, 0)
            dec_lat = prefix[0][e] - prefix[0][b]
            dec_em = prefix[1][e] - prefix[1][b]
            dec_ep = prefix[2][e] - prefix[2][b]
            dec_en = prefix[3][e] - prefix[3][b]
            dec_fl = prefix[4][e] - prefix[4][b]
        else:
            eligible &= single
            dec_lat = np.zeros(take, dtype=np.float64)
            dec_em = dec_ep = dec_en = dec_fl = dec_lat
        uniq, inverse = np.unique(inp, return_inverse=True)
        chunk_cost = self._chunk_cost
        pre = np.array(
            [chunk_cost(0, int(v)) for v in uniq], dtype=np.float64
        )[inverse]
        service = pre[:, 0] + dec_lat
        fcfs = self._fcfs_absorb
        if fcfs:
            # Lindley recursion, vectorized: completion_i =
            # max(arrival_i, completion_{i-1}) + service_i, with the
            # cumulative-max rewrite c = t + cummax(a - t_prev) over the
            # service prefix sums t.  The recursion seeds from the clock
            # (completion_{-1} = self.clock): across window boundaries
            # the previous window's tail may still be in service when
            # this window's head arrived.
            totals = np.cumsum(service)
            slack = a - totals
            slack += service
            if slack[0] < self.clock:
                slack[0] = self.clock
            completion = totals + np.maximum.accumulate(slack)
            first = completion - dec_lat
            if until is not None:
                eligible &= completion <= until
        else:
            first = a + pre[:, 0]
            completion = first + dec_lat
            if until is not None:
                eligible &= completion <= until
            # Isolation: the request must complete before the next
            # arrival lands (ties allowed — an arrival exactly at the
            # completion instant never joins the batch).
            nxt = np.empty(take, dtype=np.float64)
            nxt[: take - 1] = a[1:]
            nxt[take - 1] = arr[peek] if peek >= 0 else np.inf
            eligible &= completion <= nxt
        bad = np.flatnonzero(~eligible).tolist()
        mask = np.zeros(take, dtype=bool)
        burst_ok = self._burst_ok
        i = 0
        aborted = False
        while i < take:
            if eligible[i]:
                cut = bisect_left(bad, i)
                j = take if cut == len(bad) else bad[cut]
                mask[i:j] = True
                for _ in range(j - i):
                    pending.popleft()
                self.clock = float(completion[j - 1])
                i = j
                continue
            if burst_ok:
                before = len(pending)
                status = self._run_burst(until)
                consumed = before - len(pending)
                i += consumed
                if status == 1 and consumed:
                    continue
            aborted = True
            break
        k = int(np.count_nonzero(mask))
        if k:
            kv = self.kv
            idx = np.flatnonzero(mask)
            if self._optimistic:
                peak_pages = np.where(
                    single[idx],
                    -(inp[idx] // -page_tokens),
                    -((inp[idx] + out[idx] - 1) // -page_tokens),
                )
            else:
                peak_pages = total_pages[idx]
            kv.note_peak(int(peak_pages.max()))
            dsum = int(steps[idx].sum())
            self.decode_passes += dsum
            self.decode_tokens += dsum
            self.prefill_passes += k
            self.admissions += k
            self._outstanding -= int((inp[idx] + out[idx]).sum())
            if not self.peak_active:
                self.peak_active = 1
            self.busy += float(service[idx].sum())
            self._energy_mem += float(pre[idx, 1].sum() + dec_em[idx].sum())
            self._energy_pim += float(pre[idx, 2].sum() + dec_ep[idx].sum())
            self._energy_npu += float(pre[idx, 3].sum() + dec_en[idx].sum())
            self.flops += float(pre[idx, 4].sum() + dec_fl[idx].sum())
            self._done_arrival.frombytes(a[idx].tobytes())
            self._done_first.frombytes(first[idx].tobytes())
            self._done_completion.frombytes(completion[idx].tobytes())
            self._done_out.frombytes(out[idx].tobytes())
            if self._done_cls is not None:
                cls_col = self._cls
                self._done_cls.extend([cls_col[r] for r in rows[idx]])
            self._free.extend(rows[idx].tolist())
        keep = (not aborted) and i >= take and bool(pending)
        return (k > 0 or i > 0), keep

    def _absorb_scalar(self, until: "float | None") -> int:
        """Absorb the maximal stretch of head arrivals, one scalar closed
        form per request (detail mode).

        Every float operation matches the per-arrival path's operation
        sequence on the same values, so recorded per-request metrics are
        byte-identical to the generic loop's.
        """
        pending = self.pending
        arr, inp_col, out_col = self._arr, self._inp, self._out
        plat = self._plat
        pem, pep, pen, pfl = self._pem, self._pep, self._pen, self._pfl
        lo = self._tbl_lo
        span = self._tbl_hi - lo + 1
        kv = self.kv
        page_tokens = self._page_tokens
        pool_pages = kv.total_pages
        optimistic = self._optimistic
        fcfs = self._fcfs_absorb
        chunk_costs = self._chunk_costs
        chunk_cost = self._chunk_cost
        clock = self.clock
        count = 0
        while pending:
            row = pending[0]
            a = arr[row]
            if not fcfs and a < clock:
                break  # overlapping clump: the burst runner's regime
            i_tok = inp_col[row]
            o = out_col[row]
            total_pages = -(-(i_tok + o) // page_tokens)
            if total_pages > pool_pages:
                break  # the generic path raises the diagnostic
            if o > 1:
                beg = i_tok + 1 - lo
                end = beg + o - 1
                if plat is None or beg < 0 or end > span:
                    break
                dec_lat = plat[end] - plat[beg]
            else:
                dec_lat = 0.0
            pre = chunk_costs.get((0, i_tok))
            if pre is None:
                pre = chunk_cost(0, i_tok)
            start = a if a > clock else clock
            first = start + pre[0]
            completion = first + dec_lat
            if until is not None and completion > until:
                break
            if not fcfs and len(pending) > 1 and arr[pending[1]] < completion:
                break
            pending.popleft()
            self.busy += pre[0]
            self._energy_mem += pre[1]
            self._energy_pim += pre[2]
            self._energy_npu += pre[3]
            self.flops += pre[4]
            self.prefill_passes += 1
            self._outstanding -= i_tok + 1
            if o > 1:
                self.busy += dec_lat
                self._energy_mem += pem[end] - pem[beg]
                self._energy_pim += pep[end] - pep[beg]
                self._energy_npu += pen[end] - pen[beg]
                self.flops += pfl[end] - pfl[beg]
                self.decode_passes += o - 1
                self.decode_tokens += o - 1
                self._outstanding -= o - 1
                peak_pages = (
                    -(-(i_tok + o - 1) // page_tokens)
                    if optimistic
                    else total_pages
                )
            else:
                peak_pages = (
                    -(-i_tok // page_tokens) if optimistic else total_pages
                )
            kv.note_peak(peak_pages)
            self.admissions += 1
            if not self.peak_active:
                self.peak_active = 1
            clock = completion
            self.clock = completion
            self._first[row] = first
            self._record_completion(row)
            count += 1
        return count

    def _run_burst(self, until: "float | None") -> int:
        """Drain one busy period with a scalar specialization of the
        generic loop (arrival-order policy, worst-case grants, monolithic
        prefill, floor-free table, no events).

        Returns 0 (no state change), 1 (period drained, device idle
        again), or 2 (progressed, then hit a condition the generic loop
        must handle: the ``until`` horizon, a KV block, an off-table or
        oversized request).  Every float operation matches the generic
        path's, so detail-mode results stay byte-identical.
        """
        pending = self.pending
        arr, inp_col, out_col = self._arr, self._inp, self._out
        generated = self._generated
        held = self._held
        active = self.active
        kv = self.kv
        page_tokens = self._page_tokens
        cap = self._policy_cap
        lo = self._tbl_lo
        span = self._tbl_hi - lo + 1
        plat = self._plat
        pem, pep, pen, pfl = self._pem, self._pep, self._pen, self._pfl
        lat_max = self._lat_max * 1.000000001
        base = self._base
        share_unit = self._batch_share
        base_lat = base[0]
        chunk_costs = self._chunk_costs
        chunk_cost = self._chunk_cost
        clock = self.clock
        busy = self.busy
        e_mem = self._energy_mem
        e_pim = self._energy_pim
        e_npu = self._energy_npu
        flops = self.flops
        prefill_passes = 0
        decode_passes = 0
        decode_tokens = 0
        admissions = 0
        outstanding = 0
        num_pref = 0
        progressed = False
        result = 1

        nxt_a = arr[pending[0]]
        if until is not None and nxt_a >= until:
            return 0
        if nxt_a > clock:
            clock = nxt_a  # the generic loop's idle jump
        while True:
            if until is not None and clock >= until:
                result = 2
                break
            # Admit every due arrival up to the cap (worst-case grants),
            # exactly as the generic loop-top + _admit would.
            bail = False
            while pending and len(active) < cap:
                row = pending[0]
                if arr[row] > clock:
                    break
                o = out_col[row]
                i_tok = inp_col[row]
                total_pages = -(-(i_tok + o) // page_tokens)
                if total_pages > kv.total_pages:
                    bail = True  # generic path raises the diagnostic
                    break
                if o > 1:
                    beg = i_tok + 1 - lo
                    if beg < 0 or beg + o - 1 > span:
                        bail = True  # off-table: per-iteration pricing
                        break
                if total_pages > kv.total_pages - kv.reserved_pages:
                    bail = True  # KV-blocked: generic loop stalls it
                    break
                pending.popleft()
                kv.commit(total_pages)
                held[row] = total_pages
                active.append(row)
                num_pref += 1
                admissions += 1
                progressed = True
                if len(active) > self.peak_active:
                    self.peak_active = len(active)
            if bail:
                result = 2 if progressed else 0
                break
            if num_pref:
                # Head prefilling row: arrival-order, so first in active.
                row = -1
                for r in active:
                    if generated[r] == 0:
                        row = r
                        break
                i_tok = inp_col[row]
                pre = chunk_costs.get((0, i_tok))
                if pre is None:
                    pre = chunk_cost(0, i_tok)
                clock += pre[0]
                busy += pre[0]
                e_mem += pre[1]
                e_pim += pre[2]
                e_npu += pre[3]
                flops += pre[4]
                prefill_passes += 1
                generated[row] = 1
                num_pref -= 1
                outstanding += i_tok + 1
                self._first[row] = clock
                if out_col[row] <= 1:
                    active.remove(row)
                    kv.reserved_pages -= held[row]
                    held[row] = 0
                    self.clock = clock
                    self._record_completion(row)
                continue
            if not active:
                break  # busy period drained; result stays 1
            # All-decode macro segment: same expressions, same order as
            # _macro_step's worst-case branch.
            batch_size = len(active)
            steps = span
            off_max = 0
            offsets = []
            oappend = offsets.append
            for r in active:
                off = inp_col[r] + generated[r] - lo
                oappend(off)
                if off > off_max:
                    off_max = off
                rem = out_col[r] - generated[r]
                if rem < steps:
                    steps = rem
            if steps > span - off_max:
                steps = span - off_max
            if steps < 1:
                result = 2
                break
            shared = share_unit * (batch_size - 1)
            shared_lat = shared * base_lat
            budget = None if until is None else until - clock
            if pending and batch_size < cap:
                arrival_budget = arr[pending[0]] - clock
                if budget is None or arrival_budget < budget:
                    budget = arrival_budget
            if budget is not None and steps * batch_size * lat_max >= budget:
                if batch_size == 1 and self.vector_bisect:
                    # Lone request: shared_lat is exactly 0.0, so
                    # elapsed(j) is the plain prefix-sum difference
                    # plat[off + j] - plat[off] and the scalar bisect's
                    # answer — the smallest j with elapsed(j) >= budget —
                    # is one vectorized subtract + searchsorted away.
                    # Same IEEE ops on the same floats (the numpy prefix
                    # twins hold the cumsum prefix_sums() listified), so
                    # the cut lands on the same step: byte-identical.
                    off = offsets[0]
                    lat_start = plat[off]
                    if plat[off + steps] - lat_start >= budget:
                        diffs = (
                            self._np_prefix[0][off : off + steps + 1]
                            - lat_start
                        )
                        steps = int(
                            np.searchsorted(diffs, budget, side="left")
                        )
                else:
                    lat_start = 0.0
                    total = 0.0
                    for off in offsets:
                        lat_start += plat[off]
                        total += plat[off + steps]
                    if total - lat_start - steps * shared_lat >= budget:
                        low, high = 0, steps
                        while high - low > 1:
                            mid = (low + high) // 2
                            elapsed = 0.0
                            for off in offsets:
                                elapsed += plat[off + mid]
                            elapsed = elapsed - lat_start - mid * shared_lat
                            if elapsed < budget:
                                low = mid
                            else:
                                high = mid
                        steps = high
            j = steps
            sum_lat = 0.0
            sum_em = 0.0
            sum_ep = 0.0
            sum_en = 0.0
            sum_fl = 0.0
            finished = None
            for off, r in zip(offsets, active):
                off_j = off + j
                sum_lat += plat[off_j] - plat[off]
                sum_em += pem[off_j] - pem[off]
                sum_ep += pep[off_j] - pep[off]
                sum_en += pen[off_j] - pen[off]
                sum_fl += pfl[off_j] - pfl[off]
                new_generated = generated[r] + j
                generated[r] = new_generated
                if new_generated >= out_col[r]:
                    if finished is None:
                        finished = [r]
                    else:
                        finished.append(r)
            delta = sum_lat - j * shared_lat
            clock += delta
            busy += delta
            e_mem += sum_em - j * shared * base[1]
            e_pim += sum_ep - j * shared * base[2]
            e_npu += sum_en - j * shared * base[3]
            flops += sum_fl
            decode_passes += j
            decode_tokens += j * batch_size
            outstanding += j * batch_size
            progressed = True
            if finished is not None:
                self.clock = clock
                for r in finished:
                    active.remove(r)
                    kv.reserved_pages -= held[r]
                    held[r] = 0
                    self._record_completion(r)

        if not progressed:
            return 0
        self.clock = clock
        self.busy = busy
        self._energy_mem = e_mem
        self._energy_pim = e_pim
        self._energy_npu = e_npu
        self.flops = flops
        self.prefill_passes += prefill_passes
        self.decode_passes += decode_passes
        self.decode_tokens += decode_tokens
        self.admissions += admissions
        self._outstanding -= outstanding
        self._num_prefilling = num_pref
        return result

    # ------------------------------------------------------------------
    # Optimistic admission: growth and preempt-and-recompute
    # ------------------------------------------------------------------
    def _grow_batch(
        self, batch: "list[int]", carrier_row: "int | None"
    ) -> "list[int]":
        if self._exact_kv:
            return self._grow_batch_exact(batch, carrier_row)
        kv = self.kv
        granted: list[int] = []
        protected: set[int] = set()
        if carrier_row is not None:
            protected.add(carrier_row)
        for row in batch:
            if row not in self.active:
                continue  # preempted by an earlier member's growth
            need = (
                self._pages_for(self._inp[row] + self._generated[row])
                - self._held[row]
            )
            if need > 0 and need > kv.free_pages and self.sim.preempt:
                protected.add(row)
                while need > kv.free_pages:
                    victim = self._choose_victim(protected)
                    if victim is None:
                        break  # everyone left is protected: stall, not deadlock
                    self._preempt(victim)
            if need <= kv.free_pages:
                if need > 0:
                    kv.commit(need)
                    self._held[row] += need
                granted.append(row)
                protected.add(row)
        return granted

    def _grow_batch_exact(
        self, batch: "list[int]", carrier_row: "int | None"
    ) -> "list[int]":
        """Row twin of the object engine's ``_grow_batch``: grants route
        through the accountant (shared pages never grow), and with the
        swap tier a victim's pages move to host DRAM instead of being
        thrown away — preempting a swapped row stays the last resort when
        resident shared-prefix pages pin the pool."""
        kv = self.kv
        sim = self.sim
        rid = self._rid
        granted: list[int] = []
        protected: set[int] = set()
        if carrier_row is not None:
            protected.add(carrier_row)
        for row in batch:
            if row not in self.active:
                continue  # evicted by an earlier member's growth
            tokens = self._inp[row] + self._generated[row]
            need = kv.grow_need(rid[row], tokens)
            if need > 0 and need > kv.free_pages and (sim.swap or sim.preempt):
                protected.add(row)
                while need > kv.free_pages:
                    victim = self._choose_victim(protected)
                    if victim is not None:
                        if sim.swap:
                            self._swap_out(victim)
                        else:
                            self._preempt(victim)
                        continue
                    if sim.swap and self.swapped:
                        self._preempt_swapped(len(self.swapped) - 1)
                        continue
                    break  # everyone left is protected: stall, not deadlock
            if need <= kv.free_pages:
                kv.grow(rid[row], tokens)
                granted.append(row)
                protected.add(row)
        return granted

    def _choose_victim(self, protected: "set[int]") -> "int | None":
        candidates = [row for row in self.active if row not in protected]
        if not candidates:
            return None
        generated, prefilled = self._generated, self._prefilled
        arr, rid = self._arr, self._rid
        return min(
            candidates,
            key=lambda row: (
                generated[row],
                prefilled[row],
                -arr[row],
                -rid[row],
            ),
        )

    def _preempt(self, victim: int) -> None:
        if self._exact_kv:
            pages = self.kv.release(self._rid[victim])
        else:
            pages = self._held[victim]
            self.kv.reserved_pages -= pages
        self._held[victim] = 0
        self.active.remove(victim)
        if self._generated[victim] == 0:
            self._num_prefilling -= 1
        self.preemptions += 1
        lost = self._prefilled[victim] + self._generated[victim]
        self.recomputed_tokens += lost
        self._outstanding += lost
        if self.preemptions > 50 * max(self.offered, 1):  # pragma: no cover
            raise RuntimeError(
                f"preemption livelock: {self.preemptions} preemptions over "
                f"{self.offered} offered request(s)"
            )
        # The object engine builds a fresh _InFlight at re-admission;
        # rows persist here, so reset the progress columns now.
        self._prefilled[victim] = 0
        self._generated[victim] = 0
        self._first[victim] = 0.0
        self._requeue(victim)
        self._emit("preempt", request_id=self._rid[victim], tokens=pages)

    def _requeue(self, row: int) -> None:
        arr, rid = self._arr, self._rid
        keys = [(arr[r], rid[r]) for r in self.waiting]
        index = bisect_left(keys, (arr[row], rid[row]))
        self.waiting.insert(index, row)

    # ------------------------------------------------------------------
    # Completion recording and finalization
    # ------------------------------------------------------------------
    def _record_completion(self, row: int) -> None:
        if self._detail:
            sim = self.sim
            slo_s = 0.0
            if sim.slo_targets:
                index = min(self._cls[row], len(sim.slo_targets) - 1)
                slo_s = sim.slo_targets[index]
            self.completed.append(
                RequestMetrics(
                    request_id=self._rid[row],
                    arrival_s=self._arr[row],
                    first_token_s=self._first[row],
                    completion_s=self.clock,
                    input_tokens=self._inp[row],
                    output_tokens=self._out[row],
                    priority_class=self._cls[row],
                    slo_s=slo_s,
                    model=self._mdl[row],
                )
            )
        else:
            push_arr, push_first, push_done, push_out, push_cls = self._push_done
            push_arr(self._arr[row])
            push_first(self._first[row])
            push_done(self.clock)
            push_out(self._out[row])
            if push_cls is not None:
                push_cls(self._cls[row])
            if self._done_mdl is not None:
                self._done_mdl.append(
                    self._model_pos[self._mdl[row] or self.sim.model.name]
                )
        self._free.append(row)

    def finish(self) -> ServingMetrics:
        """Drain all remaining work and return the run's metrics."""
        if self.finished:
            raise ValueError("finish() called twice on the same run")
        self.advance_until(None)
        self.finished = True
        makespan = (
            self.clock - self.first_arrival if self.first_arrival is not None else 0.0
        )
        if self.sim.profile:
            start = perf_counter()
            metrics = self._finalize(makespan)
            self.phase_s["metrics"] += perf_counter() - start
            return metrics
        return self._finalize(makespan)

    def _finalize(self, makespan: float) -> ServingMetrics:
        if self._detail:
            self.completed.sort(key=lambda metrics: metrics.request_id)
            return self.sim._finalize(self, makespan)
        return self._finalize_pooled(makespan)

    def _finalize_pooled(self, makespan: float) -> ServingMetrics:
        """Pool metrics straight from the completion columns (numpy).

        Same aggregate formulas as ``ServingSimulator._finalize``
        (including the percentile interpolation rule) without building a
        :class:`RequestMetrics` per request — at 1e6 requests that object
        churn costs more than the simulation itself.
        """
        import numpy as np

        sim = self.sim
        arrival = np.asarray(self._done_arrival)
        first = np.asarray(self._done_first)
        completion = np.asarray(self._done_completion)
        out = np.asarray(self._done_out)
        count = int(arrival.size)
        latencies = completion - arrival
        ttfts = first - arrival
        multi = out > 1
        tpots = (
            (completion[multi] - first[multi]) / (out[multi] - 1)
            if count
            else np.empty(0)
        )
        output_tokens = int(out.sum()) if count else 0

        def pooled_mean(values) -> float:
            return float(values.mean()) if values.size else 0.0

        def pooled_percentile(values, q: float) -> float:
            if not values.size:
                return 0.0
            ordered = np.sort(values)
            position = q / 100.0 * (ordered.size - 1)
            lower = int(position)
            upper = min(lower + 1, ordered.size - 1)
            weight = position - lower
            return float(
                ordered[lower] + weight * (ordered[upper] - ordered[lower])
            )

        slo_attainment: "float | None" = None
        slo_by_class: dict[str, float] = {}
        slo_by_model_class: dict[str, float] = {}
        if sim.slo_targets is not None:
            if count:
                classes = np.asarray(self._done_cls)
                targets = np.asarray(sim.slo_targets, dtype=np.float64)
                slo = targets[np.minimum(classes, len(targets) - 1)]
                met = latencies <= slo
                slo_attainment = float(met.mean())
                slo_by_class = {
                    str(int(cls)): float(met[classes == cls].mean())
                    for cls in np.unique(classes)
                }
                if self._done_mdl is not None:
                    names = self._model_names
                    model_idx = np.asarray(self._done_mdl)
                    pairs = sorted(
                        {
                            (names[int(m)], int(c))
                            for m, c in zip(model_idx, classes)
                        }
                    )
                    slo_by_model_class = {
                        f"{name}/{cls}": float(
                            met[
                                (model_idx == self._model_pos[name])
                                & (classes == cls)
                            ].mean()
                        )
                        for name, cls in pairs
                    }
            else:
                slo_attainment = 1.0

        ordered_latencies = np.sort(latencies)
        ordered_ttfts = np.sort(ttfts)
        kv = self.kv
        decode_passes = self.decode_passes
        return ServingMetrics(
            backend=sim.cost_model.name,
            model=sim.model.name,
            policy=sim.policy.name,
            num_requests=count,
            makespan_s=makespan,
            busy_s=self.busy,
            utilization=self.busy / makespan if makespan > 0 else 0.0,
            output_tokens=output_tokens,
            tokens_per_s=output_tokens / makespan if makespan > 0 else 0.0,
            requests_per_s=count / makespan if makespan > 0 else 0.0,
            latency_mean_s=pooled_mean(latencies),
            latency_p50_s=pooled_percentile(ordered_latencies, 50.0),
            latency_p99_s=pooled_percentile(ordered_latencies, 99.0),
            ttft_mean_s=pooled_mean(ttfts),
            ttft_p50_s=pooled_percentile(ordered_ttfts, 50.0),
            ttft_p99_s=pooled_percentile(ordered_ttfts, 99.0),
            tpot_mean_s=pooled_mean(tpots),
            energy_j=self.energy.total_j,
            flops=self.flops,
            prefill_passes=self.prefill_passes,
            decode_passes=decode_passes,
            mean_decode_batch=(
                self.decode_tokens / decode_passes if decode_passes else 0.0
            ),
            admission=sim.admission,
            admissions=self.admissions,
            peak_active=self.peak_active,
            preemptions=self.preemptions,
            recomputed_tokens=self.recomputed_tokens,
            swap_outs=self.swap_outs,
            swap_ins=self.swap_ins,
            swapped_pages=self.swapped_pages_total,
            link_gbps=sim.link_gbps if sim.swap else 0.0,
            chunk_tokens=sim.chunk_tokens,
            kv_page_tokens=kv.page_tokens,
            kv_pages_total=kv.total_pages,
            kv_peak_pages=kv.peak_reserved_pages,
            kv_budget_bytes=kv.budget_bytes,
            slo_attainment=slo_attainment,
            slo_by_class=slo_by_class,
            models=self._model_names if self._multi else (),
            model_swaps=self.model_swaps,
            model_swap_s=self.model_swap_s,
            slo_by_model_class=slo_by_model_class,
            per_request=(),
        )

    # ------------------------------------------------------------------
    # Failure injection and failover (driven by the cluster layer)
    # ------------------------------------------------------------------
    def fail(self, now: float) -> "tuple[list[Request], int]":
        """Kill this replica at instant ``now`` (see the object engine)."""
        if self.finished:
            raise ValueError("cannot fail a finished run")
        if self.dead:
            raise ValueError("replica is already dead")
        dropped_ids = tuple(
            sorted(self._rid[row] for row in (*self.active, *self.swapped))
        )
        lost_rows = (
            list(self.active)
            + list(self.swapped)
            + list(self.waiting)
            + list(self.pending)
        )
        lost = [self._request(row) for row in lost_rows]
        lost.sort(key=lambda request: (request.arrival_s, request.request_id))
        if self._exact_kv:
            pages = self.kv.release_all()
        else:
            pages = self.kv.reserved_pages
            self.kv.reserved_pages = 0
        for row in lost_rows:
            self._held[row] = 0
            self._free.append(row)
        self.active.clear()
        self.swapped.clear()
        self.waiting.clear()
        self.pending.clear()
        self._num_prefilling = 0
        self._outstanding = 0
        if now > self.clock:
            self.clock = now
        self.dead = True
        self._emit("fail", tokens=pages, decode_ids=dropped_ids)
        return lost, pages

    def recover(self, now: float) -> None:
        """Bring a failed replica back (empty: its KV cache did not survive)."""
        if self.finished:
            raise ValueError("cannot recover a finished run")
        if not self.dead:
            raise ValueError("cannot recover a replica that is not dead")
        self.dead = False
        if now > self.clock:
            self.clock = now
        self._emit("recover")

    def resubmit(self, request: Request) -> None:
        """Re-inject a failed-over request for recompute from scratch."""
        if self.finished:
            raise ValueError("cannot resubmit a request to a finished run")
        if self.dead:
            raise ValueError("cannot resubmit a request to a failed replica")
        if request.prefix_id >= 0 and not self._exact_kv:
            self._ensure_exact_kv()
        self._requeue(self._new_row(request))
        self.offered += 1
        self._outstanding += request.input_tokens + request.output_tokens
        if self.first_arrival is None or request.arrival_s < self.first_arrival:
            self.first_arrival = request.arrival_s

    def catch_up(self, now: float) -> None:
        """Jump an idle replica's clock forward to ``now``."""
        if (
            now > self.clock
            and not self.active
            and not self.waiting
            and not self.swapped
        ):
            self.clock = now
            self._emit("idle")

    def note_scale(self, delta: int) -> None:
        """Record an autoscaling decision (+1 spawn, -1 drain) in the log."""
        self._emit("scale", tokens=delta)
