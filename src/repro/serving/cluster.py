"""Multi-replica cluster serving: request routing over replicated devices.

One IANUS appliance (or GPU) is a *replica*: a cost model plus a KV page
accountant, simulated by :class:`~repro.serving.simulator.ServingSimulator`.
A :class:`ClusterSimulator` fans a single arrival trace out over ``R``
replicas through a pluggable :class:`Router` and pools the per-replica
metrics into one :class:`ClusterMetrics` — the serving-layer counterpart of
the paper's Sec. 7.1 scale-out, but at *request* rather than tensor
granularity (each replica may itself be a multi-device cluster via
``make_cost_model("ianus-xN")``).

Routing is **online and causal**: requests are routed one at a time in
arrival order, and before each decision every replica is advanced to the
arrival instant (:meth:`~repro.serving.simulator.SimulationRun.advance_until`),
so the router sees exactly the state a real load balancer would — queue
depths, outstanding tokens and free KV pages as of that moment, never the
future.  Routers:

``round-robin``
    Ignore state, rotate.  The baseline every balancer is measured against.
``least-outstanding-tokens``
    Route to the replica with the fewest prompt+output tokens still to
    compute (queued or in flight) — join-shortest-queue in token units.
``kv-aware``
    Route to the replica with the most *effective* free KV pages: free
    pages plus any pages of the arriving request's shared prefix already
    resident there (those cost the request nothing — landing next to its
    prefix is both cheaper and stickier, so group members co-locate and
    the prefix is charged once per replica instead of once per member).
    Free pages track both load and *memory* pressure, which is what
    actually gates admission under paged-KV serving; under skewed traces
    this keeps the heavy tail from piling onto one replica's pool.
    Without shared prefixes the resident term is identically zero and the
    router scores plain free pages, byte-identical to before.

A one-replica cluster reproduces the single-device simulator **byte for
byte** under every router (all decisions collapse to replica 0, and the
run prices passes over the same anchor grid), which is the differential
test pinning this layer to PR 3/4's.

Production ops: failures, failover, autoscaling
-----------------------------------------------
A production fleet is not fixed: replicas die, recover, and are scaled
with load.  ``ClusterSimulator(..., failures=..., autoscaler=...)``
activates the ops layer:

- a :class:`~repro.serving.failures.FailureSchedule` kills replicas at
  scheduled instants — the victim's KV pages are dropped and its
  unfinished requests *fail over*: they are re-routed (through the same
  router, over the surviving replicas' state at the failure instant) and
  recomputed from scratch, keeping their original arrival so latency
  accrues across the failure.  Recovery brings the replica back empty.
- an :class:`~repro.serving.autoscale.Autoscaler` is consulted at every
  arrival instant on router-visible state only.  A spawned replica warms
  up for :func:`~repro.serving.autoscale.replica_warmup_s` (weights over
  the host link plus one priming pass, priced by the cost model) before
  it may serve; a drained replica finishes its routed work but takes no
  new requests.  Routers therefore receive the *eligible subset* of
  snapshots and must return the chosen snapshot's ``index`` field.

The fleet's cost is metered in **replica-seconds** (the energy/price
proxy the chaos benches trade against SLO attainment): each replica is
billed from the trace start (or its spawn) until it fails, empties after
a drain, or the run ends.  With no failure schedule and no autoscaler the
ops layer is inert and the run is byte-identical to the plain cluster.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.costmodel import CostModel
from repro.models.transformer import ModelConfig
from repro.serving.autoscale import (
    Autoscaler,
    AutoscalerSignal,
    make_autoscaler,
    replica_warmup_s,
)
from repro.serving.failures import FailureSchedule, make_failure_schedule
from repro.serving.request import Request, RequestMetrics
from repro.serving.simulator import (
    ServingMetrics,
    ServingSimulator,
    SimulationRun,
    _decode_kv_bounds,
    _validated_construct,
    percentile,
)
from repro.serving.validate import check_cluster_invariants, check_invariants

__all__ = [
    "ReplicaSnapshot",
    "Router",
    "RoundRobinRouter",
    "LeastOutstandingTokensRouter",
    "KvAwareRouter",
    "ModelAwareRouter",
    "ROUTERS",
    "make_router",
    "ClusterMetrics",
    "ClusterSimulator",
    "cluster_kv_peak",
]


# ----------------------------------------------------------------------
# Routers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReplicaSnapshot:
    """What a router may observe about one replica at an arrival instant."""

    index: int
    #: Requests routed here and not yet completed (queued or in flight).
    outstanding_requests: int
    #: Prompt + output tokens not yet computed across those requests.
    outstanding_tokens: int
    #: Uncommitted pages of the replica's KV pool right now.
    free_kv_pages: int
    total_kv_pages: int
    #: Requests / total tokens ever routed to this replica.
    routed_requests: int
    routed_tokens: int
    #: Pages of the *arriving request's* shared prefix already resident on
    #: this replica (0 when the request shares nothing or the prefix is
    #: absent) — those pages would cost the request nothing here.
    resident_prefix_pages: int = 0
    #: Model whose weights are resident on the replica right now,
    #: normalized like :attr:`Request.model` (empty string = the cluster's
    #: default model).  Routing a request here costs no weight swap iff
    #: this equals the request's ``model`` field.
    resident_model: str = ""


class Router:
    """Chooses the replica that serves the next arrival.

    ``select`` sees one :class:`ReplicaSnapshot` per *eligible* replica
    (ascending ``index`` order — under failures/autoscaling this may be a
    subset of the fleet) plus the arriving request, and returns the chosen
    snapshot's ``index`` field.  Routers may keep internal state
    (round-robin does); ``reset`` is called at the start of every cluster
    simulation so a reused :class:`ClusterSimulator` stays deterministic
    run over run.
    """

    name = "router"

    def reset(self) -> None:
        """Drop any per-simulation state (no-op for stateless routers)."""

    def select(
        self, replicas: "Sequence[ReplicaSnapshot]", request: Request
    ) -> int:
        raise NotImplementedError


class RoundRobinRouter(Router):
    """Rotate through the offered replicas, blind to their state."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def select(self, replicas, request):
        choice = replicas[self._next % len(replicas)].index
        self._next += 1
        return choice

    def reset(self) -> None:
        self._next = 0


class LeastOutstandingTokensRouter(Router):
    """Join-shortest-queue in token units (ties: lowest replica index)."""

    name = "least-outstanding-tokens"

    def select(self, replicas, request):
        return min(
            replicas, key=lambda state: (state.outstanding_tokens, state.index)
        ).index


class KvAwareRouter(Router):
    """Route to the replica with the most effective free KV pages.

    Effective = free pages + pages of the arriving request's shared
    prefix already resident there (ties: lowest index).  The resident
    term is zero for requests that share nothing, so without prefix
    sharing this is exactly the most-free-pages rule.
    """

    name = "kv-aware"

    def select(self, replicas, request):
        return min(
            replicas,
            key=lambda state: (
                -(state.free_kv_pages + state.resident_prefix_pages),
                state.index,
            ),
        ).index


class ModelAwareRouter(Router):
    """Route on (resident model, load, KV): swap avoidance first.

    Prefers replicas whose resident weights already match the arriving
    request's model (a mismatch costs a full weight swap on the replica's
    next pass for that request), then the least outstanding tokens among
    them, then the most effective free KV pages, then the lowest index.
    With a single-model set every replica always matches, so this
    degrades to exactly the least-outstanding-tokens rule with a KV
    tie-break — the model term never reorders a model-blind fleet.
    """

    name = "model-aware"

    def select(self, replicas, request):
        return min(
            replicas,
            key=lambda state: (
                0 if state.resident_model == request.model else 1,
                state.outstanding_tokens,
                -(state.free_kv_pages + state.resident_prefix_pages),
                state.index,
            ),
        ).index


#: Router registry: CLI/experiment name -> class, in presentation order.
ROUTERS: dict[str, type[Router]] = {
    "round-robin": RoundRobinRouter,
    "least-outstanding-tokens": LeastOutstandingTokensRouter,
    "kv-aware": KvAwareRouter,
    "model-aware": ModelAwareRouter,
}


def make_router(name: str, **kwargs) -> Router:
    """Instantiate a router by name — the single validation point.

    Unknown names raise with the list of known routers; keyword arguments
    the named router does not accept raise instead of being dropped (the
    same validated construction path as
    :func:`~repro.serving.simulator.make_policy`).
    """
    return _validated_construct("router", ROUTERS, name, kwargs)


# ----------------------------------------------------------------------
# Cluster-wide KV peak
# ----------------------------------------------------------------------
def cluster_kv_peak(event_logs: "Sequence[Sequence]") -> int:
    """Peak *summed* reserved KV pages across replicas at any event instant.

    Merges the replicas' event logs in clock order (each log's
    ``kv_reserved_pages`` is a step function over its own events) and
    tracks the maximum of the sum — the cluster-wide high-water mark, which
    is lower than the sum of per-replica peaks whenever the replicas peak
    at different times.
    """
    merged = sorted(
        (
            (event.clock_s, replica_index, sequence, event.kv_reserved_pages)
            for replica_index, events in enumerate(event_logs)
            for sequence, event in enumerate(events)
        ),
        key=lambda item: (item[0], item[1], item[2]),
    )
    current = [0] * len(event_logs)
    peak = 0
    for _, replica_index, _, reserved in merged:
        current[replica_index] = reserved
        total = sum(current)
        if total > peak:
            peak = total
    return peak


# ----------------------------------------------------------------------
# Pooled metrics
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClusterMetrics:
    """Pooled metrics of one cluster simulation (plus per-replica detail)."""

    backend: str
    model: str
    policy: str
    router: str
    admission: str
    num_replicas: int
    num_requests: int
    makespan_s: float
    busy_s: float
    utilization: float
    output_tokens: int
    tokens_per_s: float
    requests_per_s: float
    latency_mean_s: float
    latency_p50_s: float
    latency_p99_s: float
    ttft_mean_s: float
    ttft_p50_s: float
    ttft_p99_s: float
    tpot_mean_s: float
    energy_j: float
    flops: float
    admissions: int
    peak_active: int
    preemptions: int
    recomputed_tokens: int
    #: Requests / tokens routed to each replica, in replica order.
    routed_requests: tuple[int, ...]
    routed_tokens: tuple[int, ...]
    #: max/min routed tokens over the replicas that received at least one
    #: request (1.0 when fewer than two replicas did).
    load_imbalance: float
    #: Cluster-wide instantaneous KV peak (summed across replicas).
    kv_peak_pages: int
    kv_pages_total: int
    slo_attainment: "float | None" = None
    slo_by_class: dict = field(default_factory=dict)
    #: Production-ops accounting (inert defaults when no failure schedule
    #: or autoscaler was configured).
    failure_schedule: str = "none"
    autoscaler: str = "fixed"
    failures: int = 0
    recoveries: int = 0
    rerouted_requests: int = 0
    dropped_kv_pages: int = 0
    scale_ups: int = 0
    scale_downs: int = 0
    #: Summed alive time across replicas — the fleet's energy/cost proxy.
    replica_seconds: float = 0.0
    peak_replicas: int = 0
    #: Modeled warm-up a spawned replica pays before serving.
    warmup_s: float = 0.0
    #: Names of the co-hosted model set; empty for single-model clusters
    #: (the pre-multi-model representation is preserved byte for byte).
    models: tuple = ()
    #: Weight swaps paid across replicas when active models changed.
    model_swaps: int = 0
    #: Summed simulated seconds replicas spent streaming model weights.
    model_swap_s: float = 0.0
    #: Pooled per-(model, class) SLO attainment, keyed ``"model/class"`` —
    #: populated only for multi-model clusters with SLO targets.
    slo_by_model_class: dict = field(default_factory=dict)
    per_replica: tuple[ServingMetrics, ...] = field(default_factory=tuple)
    per_request: tuple[RequestMetrics, ...] = field(default_factory=tuple)

    def to_dict(
        self, include_requests: bool = True, include_replicas: bool = True
    ) -> dict:
        """JSON-stable representation (reports and determinism tests)."""
        data = {
            "backend": self.backend,
            "model": self.model,
            "policy": self.policy,
            "router": self.router,
            "admission": self.admission,
            "num_replicas": self.num_replicas,
            "num_requests": self.num_requests,
            "makespan_s": self.makespan_s,
            "busy_s": self.busy_s,
            "utilization": self.utilization,
            "output_tokens": self.output_tokens,
            "tokens_per_s": self.tokens_per_s,
            "requests_per_s": self.requests_per_s,
            "latency_mean_s": self.latency_mean_s,
            "latency_p50_s": self.latency_p50_s,
            "latency_p99_s": self.latency_p99_s,
            "ttft_mean_s": self.ttft_mean_s,
            "ttft_p50_s": self.ttft_p50_s,
            "ttft_p99_s": self.ttft_p99_s,
            "tpot_mean_s": self.tpot_mean_s,
            "energy_j": self.energy_j,
            "flops": self.flops,
            "admissions": self.admissions,
            "peak_active": self.peak_active,
            "preemptions": self.preemptions,
            "recomputed_tokens": self.recomputed_tokens,
            "routed_requests": list(self.routed_requests),
            "routed_tokens": list(self.routed_tokens),
            "load_imbalance": self.load_imbalance,
            "kv_peak_pages": self.kv_peak_pages,
            "kv_pages_total": self.kv_pages_total,
            "slo_attainment": self.slo_attainment,
            "slo_by_class": self.slo_by_class,
            "failure_schedule": self.failure_schedule,
            "autoscaler": self.autoscaler,
            "failures": self.failures,
            "recoveries": self.recoveries,
            "rerouted_requests": self.rerouted_requests,
            "dropped_kv_pages": self.dropped_kv_pages,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "replica_seconds": self.replica_seconds,
            "peak_replicas": self.peak_replicas,
            "warmup_s": self.warmup_s,
        }
        if len(self.models) > 1:
            # Multi-model keys appear only for real model sets, so a
            # single-model cluster's dict matches the pre-multi-model
            # layout.
            data["models"] = list(self.models)
            data["model_swaps"] = self.model_swaps
            data["model_swap_s"] = self.model_swap_s
            data["slo_by_model_class"] = self.slo_by_model_class
        if include_replicas:
            data["per_replica"] = [
                metrics.to_dict(include_requests=False)
                for metrics in self.per_replica
            ]
        if include_requests:
            data["per_request"] = [metrics.to_dict() for metrics in self.per_request]
        return data

    def summary(self) -> str:
        """Multi-line human-readable summary (``repro serve`` prints this)."""
        routed = ", ".join(
            f"r{index}: {count} req / {tokens} tok"
            for index, (count, tokens) in enumerate(
                zip(self.routed_requests, self.routed_tokens)
            )
        )
        imbalance = f"{self.load_imbalance:.2f}x"
        lines = [
            f"cluster         : {self.num_replicas} x {self.backend} "
            f"(router {self.router}, {self.admission} admission)",
            f"model           : {self.model}",
            f"policy          : {self.policy}",
            f"requests        : {self.num_requests} "
            f"({self.output_tokens} output tokens)",
            f"routing         : {routed} (imbalance {imbalance})",
            f"makespan        : {self.makespan_s:.3f} s "
            f"(summed busy {self.busy_s:.3f} s, {self.utilization:.0%} utilized)",
            f"throughput      : {self.tokens_per_s:.1f} tokens/s, "
            f"{self.requests_per_s:.2f} requests/s",
            f"latency         : mean {self.latency_mean_s * 1e3:.1f} ms, "
            f"p50 {self.latency_p50_s * 1e3:.1f} ms, "
            f"p99 {self.latency_p99_s * 1e3:.1f} ms",
            f"TTFT            : mean {self.ttft_mean_s * 1e3:.1f} ms, "
            f"p99 {self.ttft_p99_s * 1e3:.1f} ms",
            f"TPOT            : mean {self.tpot_mean_s * 1e3:.3f} ms/token",
            f"admission       : {self.admissions} admits, "
            f"peak {self.peak_active} in flight, "
            f"{self.preemptions} preemptions "
            f"({self.recomputed_tokens} tokens recomputed)",
            f"cluster KV peak : {self.kv_peak_pages}/{self.kv_pages_total} "
            "pages (summed across replicas)",
            f"dynamic energy  : {self.energy_j * 1e3:.1f} mJ",
        ]
        if len(self.models) > 1:
            lines.append(
                f"model set       : {', '.join(self.models)} "
                f"({self.model_swaps} weight swaps, "
                f"{self.model_swap_s:.3f} s streaming)"
            )
        if self.failure_schedule != "none" or self.autoscaler != "fixed":
            lines.append(
                f"ops             : {self.failures} failure(s) "
                f"({self.rerouted_requests} rerouted, "
                f"{self.dropped_kv_pages} pages dropped), "
                f"{self.recoveries} recovery(ies), "
                f"+{self.scale_ups}/-{self.scale_downs} scale, "
                f"{self.replica_seconds:.3f} replica-s "
                f"(peak {self.peak_replicas} replicas, "
                f"warm-up {self.warmup_s * 1e3:.1f} ms)"
            )
        if self.slo_attainment is not None:
            by_class = ", ".join(
                f"class {cls}: {attained:.0%}"
                for cls, attained in self.slo_by_class.items()
            )
            lines.append(
                f"SLO attainment  : {self.slo_attainment:.0%}"
                + (f" ({by_class})" if by_class else "")
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Cluster simulator
# ----------------------------------------------------------------------
def _snapshot(
    index: int,
    run: SimulationRun,
    assignments: "list[list[Request]]",
    routed_tokens: "list[int]",
    request: "Request | None" = None,
) -> ReplicaSnapshot:
    """The router-visible state of one replica at this instant.

    When the arriving ``request`` is given and shares a prefix, the
    snapshot also reports how many pages of that prefix are already
    resident on the replica (autoscaler snapshots pass no request — the
    field stays 0, which every built-in consumer treats as neutral).
    """
    resident = 0
    if request is not None and request.prefix_id >= 0:
        resident = run.kv.resident_prefix_pages(request.prefix_id)
    # Report the resident model in Request.model's convention (empty =
    # default), so routers can compare it to request.model directly.
    resident_model = run.resident_model
    if resident_model == run.sim.model.name:
        resident_model = ""
    return ReplicaSnapshot(
        index=index,
        outstanding_requests=run.outstanding_requests,
        outstanding_tokens=run.outstanding_tokens,
        free_kv_pages=run.kv.free_pages,
        total_kv_pages=run.kv.total_pages,
        routed_requests=len(assignments[index]),
        routed_tokens=routed_tokens[index],
        resident_prefix_pages=resident,
        resident_model=resident_model,
    )


class _OpsState:
    """Mutable production-ops bookkeeping of one ``simulate()`` call.

    Owns the fleet's liveness/draining/warm-up state, applies the failure
    schedule (failover included), consults the autoscaler, and meters
    replica-seconds.  Created only when a failure schedule or autoscaler
    is configured; inert configurations (``failures="none"`` with the
    ``fixed`` autoscaler) leave every run byte-identical to the plain
    fixed-fleet path.
    """

    def __init__(
        self,
        cluster: "ClusterSimulator",
        runs: "list[SimulationRun]",
        assignments: "list[list[Request]]",
        routed_tokens: "list[int]",
        start: float,
        record_events: bool,
        bounds: "tuple[int, int] | None",
    ) -> None:
        self.cluster = cluster
        self.runs = runs
        self.assignments = assignments
        self.routed_tokens = routed_tokens
        self.record_events = record_events
        self.bounds = bounds
        schedule = cluster.failures
        self.pending = deque(
            sorted(schedule.events(len(runs))) if schedule is not None else ()
        )
        count = len(runs)
        self.alive = [True] * count
        self.draining = [False] * count
        #: Initial replicas are warm from the start; spawned ones wait.
        self.ready_at = [float("-inf")] * count
        #: Open billing segment per replica (None while failed/closed).
        self.open_clock: "list[float | None]" = [start] * count
        self.seconds = [0.0] * count
        self.drain_clock = [0.0] * count
        self.failures = 0
        self.recoveries = 0
        self.scale_ups = 0
        self.scale_downs = 0
        self.rerouted = 0
        self.dropped_pages = 0
        self.peak_replicas = count
        self._has_slo = bool(cluster.replicas[0].slo_targets)

    # -- liveness ------------------------------------------------------
    def eligible(self, now: float) -> "list[int]":
        """Replicas the router may choose from: alive, warmed, not draining."""
        return [
            index
            for index in range(len(self.runs))
            if self.alive[index]
            and not self.draining[index]
            and self.ready_at[index] <= now
        ]

    def apply_until(self, now: "float | None") -> None:
        """Apply every scheduled fleet event at or before ``now`` (all
        remaining ones when ``None``, at the end of the trace)."""
        while self.pending and (now is None or self.pending[0].time_s <= now):
            event = self.pending.popleft()
            if event.kind == "fail":
                self._fail(event)
            else:
                self._recover(event)

    def _fail(self, event) -> None:
        index = event.replica
        if not self.alive[index]:
            raise RuntimeError(
                f"failure schedule kills replica {index} at "
                f"{event.time_s:.6f}s but it is already down"
            )
        run = self.runs[index]
        run.advance_until(event.time_s)
        lost, pages = run.fail(event.time_s)
        self.alive[index] = False
        self.failures += 1
        self.dropped_pages += pages
        # Billed until the straddling pass ended (run.clock >= fail time).
        self._close_segment(index, run.clock)
        if not lost:
            return
        candidates = self.eligible(event.time_s)
        if not candidates:
            # Emergency failover: no serving replica survives.  Reverse
            # any in-progress drain first — a draining replica is warm
            # and alive, so cancelling its retirement is how production
            # absorbs a failure mid-scale-down.
            for i in range(len(self.runs)):
                if self.alive[i] and self.draining[i]:
                    self.draining[i] = False
                    self.scale_downs -= 1
                    candidates.append(i)
        if not candidates:
            # Last resort: replicas still warming up.  They take the
            # work now but begin recomputing only once warmed.
            candidates = [
                i for i in range(len(self.runs)) if self.alive[i]
            ]
        if not candidates:
            raise RuntimeError(
                f"replica {index} failed at {event.time_s:.6f}s with "
                f"{len(lost)} unfinished request(s) and no eligible "
                "replica to fail over to"
            )
        for survivor in candidates:
            # Survivors advance to the failure instant before receiving
            # work: resubmits bypass the pending queue, so an idle
            # survivor must not start recomputing in the past (a warming
            # survivor, no earlier than the end of its warm-up).
            self.runs[survivor].advance_until(event.time_s)
            self.runs[survivor].catch_up(
                max(event.time_s, self.ready_at[survivor])
            )
        router = self.cluster.router
        for request in lost:
            snapshots = [
                _snapshot(
                    i, self.runs[i], self.assignments, self.routed_tokens,
                    request,
                )
                for i in candidates
            ]
            choice = router.select(snapshots, request)
            if choice not in set(candidates):
                raise ValueError(
                    f"router {router.name!r} chose replica {choice} of "
                    f"{len(self.runs)} (eligible: {candidates})"
                )
            self.runs[choice].resubmit(request)
            self.assignments[choice].append(request)
            self.routed_tokens[choice] += request.total_tokens
            self.rerouted += 1

    def _recover(self, event) -> None:
        index = event.replica
        if self.alive[index]:
            raise RuntimeError(
                f"failure schedule recovers replica {index} at "
                f"{event.time_s:.6f}s but it is not down"
            )
        self.runs[index].recover(event.time_s)
        self.alive[index] = True
        self.recoveries += 1
        # The failure already billed through the straddling pass's end
        # (run.clock at the fail), which can lie past a fast recovery —
        # reopening earlier would bill that overlap twice.  recover()
        # leaves run.clock at max(billed end, recovery instant).
        self.open_clock[index] = self.runs[index].clock
        self._note_peak()

    def _note_peak(self) -> None:
        count = sum(1 for flag in self.alive if flag)
        if count > self.peak_replicas:
            self.peak_replicas = count

    # -- autoscaling ---------------------------------------------------
    def autoscale(self, now: float) -> None:
        autoscaler = self.cluster.autoscaler
        if autoscaler is None:
            return
        candidates = self.eligible(now)
        snapshots = tuple(
            _snapshot(i, self.runs[i], self.assignments, self.routed_tokens)
            for i in candidates
        )
        provisioned = sum(
            1
            for index in range(len(self.runs))
            if self.alive[index] and not self.draining[index]
        )
        signal = AutoscalerSignal(
            clock_s=now,
            snapshots=snapshots,
            provisioned_replicas=provisioned,
            slo_attainment=self._window_attainment(now, autoscaler.window_s),
        )
        delta = autoscaler.evaluate(signal)
        if delta > 0:
            self._spawn(now)
        elif delta < 0:
            self._drain(now, snapshots)

    def _window_attainment(
        self, now: float, window_s: float
    ) -> "float | None":
        """Causal SLO attainment: scored completions inside the window."""
        if not self._has_slo:
            return None
        met = 0
        total = 0
        for run in self.runs:
            for metrics in run.completed:
                if metrics.slo_s <= 0.0:
                    continue
                if now - window_s <= metrics.completion_s <= now:
                    total += 1
                    if metrics.slo_met:
                        met += 1
        if total == 0:
            return None
        return met / total

    def _spawn(self, now: float) -> None:
        cluster = self.cluster
        replica = ServingSimulator(
            cluster.cost_model, cluster.model, **cluster._simulator_kwargs
        )
        cluster.replicas.append(replica)
        run = replica.begin(
            record_events=self.record_events, kv_bounds=self.bounds
        )
        run.clock = now
        run.note_scale(+1)
        self.runs.append(run)
        self.assignments.append([])
        self.routed_tokens.append(0)
        self.alive.append(True)
        self.draining.append(False)
        self.ready_at.append(now + cluster._warmup_s)
        self.open_clock.append(now)
        self.seconds.append(0.0)
        self.drain_clock.append(0.0)
        self.scale_ups += 1
        self._note_peak()

    def _drain(self, now: float, snapshots: "tuple[ReplicaSnapshot, ...]") -> None:
        if len(snapshots) <= 1:
            return  # never drain the last serving replica
        # Retire the least-loaded serving replica (ties: the newest).
        choice = min(
            snapshots, key=lambda snap: (snap.outstanding_tokens, -snap.index)
        ).index
        self.draining[choice] = True
        self.drain_clock[choice] = now
        self.runs[choice].note_scale(-1)
        self.scale_downs += 1

    # -- replica-seconds -----------------------------------------------
    def _close_segment(self, index: int, end: float) -> None:
        begin = self.open_clock[index]
        if begin is not None:
            self.seconds[index] += max(0.0, end - begin)
            self.open_clock[index] = None

    def close_out(self, global_end: float) -> None:
        """Close every open billing segment at the end of the run."""
        for index in range(len(self.runs)):
            if self.open_clock[index] is None:
                continue
            if self.draining[index]:
                # A drained replica stops billing once its work is done.
                end = max(self.drain_clock[index], self.runs[index].clock)
            else:
                end = global_end
            self._close_segment(index, end)


class ClusterSimulator:
    """Fan one trace out over ``num_replicas`` identical replicas.

    Parameters
    ----------
    cost_model:
        The per-replica backend (shared across replicas: pass costs are
        pure and cached, so sharing one instance is safe and warm).  Use
        ``make_cost_model("ianus-xN")`` for replicas that are themselves
        multi-device.
    model:
        The served model.
    num_replicas:
        Replica count ``R`` (the *initial* fleet when autoscaling).
    router:
        A name in :data:`ROUTERS` or a :class:`Router` instance.
    failures:
        A name in :data:`~repro.serving.failures.FAILURE_SCHEDULES`, a
        :class:`~repro.serving.failures.FailureSchedule` instance, or
        ``None`` (never fails).
    autoscaler:
        A name in :data:`~repro.serving.autoscale.AUTOSCALERS`, an
        :class:`~repro.serving.autoscale.Autoscaler` instance, or ``None``
        (fixed fleet).
    **simulator_kwargs:
        Everything else (policy, admission, preempt, kv_fraction, ...) is
        forwarded to each replica's
        :class:`~repro.serving.simulator.ServingSimulator` — including
        replicas spawned by the autoscaler mid-run.
    """

    def __init__(
        self,
        cost_model: CostModel,
        model: ModelConfig,
        num_replicas: int = 2,
        router: "Router | str" = "round-robin",
        failures: "FailureSchedule | str | None" = None,
        autoscaler: "Autoscaler | str | None" = None,
        **simulator_kwargs,
    ) -> None:
        if num_replicas < 1:
            raise ValueError("num_replicas must be at least 1")
        if simulator_kwargs.get("per_request_detail") is False:
            # Cluster metrics are pooled across replicas FROM the
            # per-request rows, so replicas must keep them.
            raise ValueError(
                "per_request_detail=False is not supported for cluster "
                "replicas; the cluster pools metrics from per-request rows"
            )
        self.cost_model = cost_model
        self.model = model
        self.router = make_router(router) if isinstance(router, str) else router
        self.failures = (
            make_failure_schedule(failures)
            if isinstance(failures, str)
            else failures
        )
        self.autoscaler = (
            make_autoscaler(autoscaler)
            if isinstance(autoscaler, str)
            else autoscaler
        )
        self._simulator_kwargs = dict(simulator_kwargs)
        self._initial_count = num_replicas
        self._warmup_s = (
            replica_warmup_s(cost_model, model)
            if self.autoscaler is not None
            else 0.0
        )
        self.replicas = [
            ServingSimulator(cost_model, model, **simulator_kwargs)
            for _ in range(num_replicas)
        ]
        #: Per-replica event logs of the last simulate() (None entries when
        #: events were not recorded).
        self.events: "list[list] | None" = None
        #: Per-replica request assignments of the last simulate().
        self.assignments: "list[tuple[Request, ...]] | None" = None
        self._last_trace: "tuple[Request, ...] | None" = None

    @property
    def num_replicas(self) -> int:
        return len(self.replicas)

    @property
    def _ops_active(self) -> bool:
        return self.failures is not None or self.autoscaler is not None

    # ------------------------------------------------------------------
    def simulate(
        self, requests: Sequence[Request], record_events: bool = True
    ) -> ClusterMetrics:
        """Route and play a trace to completion; returns pooled metrics.

        Events are recorded by default: they feed the cluster-wide KV peak
        and let every simulation self-validate
        (:meth:`validate_invariants`); pass ``record_events=False`` to
        skip both (the KV peak then falls back to the summed per-replica
        peaks, an upper bound).
        """
        ordered = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        bounds = _decode_kv_bounds(ordered)
        # A reused simulator must stay deterministic: stateful routers
        # (round-robin's rotation) restart with every simulation, and the
        # fleet shrinks back to its initial replicas (autoscaling grows
        # self.replicas mid-run).
        self.router.reset()
        if self.autoscaler is not None:
            self.autoscaler.reset()
        del self.replicas[self._initial_count :]
        runs: list[SimulationRun] = [
            replica.begin(record_events=record_events, kv_bounds=bounds)
            for replica in self.replicas
        ]
        assignments: list[list[Request]] = [[] for _ in runs]
        routed_tokens = [0] * len(runs)
        start = ordered[0].arrival_s if ordered else 0.0
        self.route_s = 0.0
        self._last_runs = runs
        ops: "_OpsState | None" = None
        if self._ops_active:
            ops = _OpsState(
                self, runs, assignments, routed_tokens, start,
                record_events, bounds,
            )
            self._route_generic(ordered, runs, assignments, routed_tokens, ops)
        else:
            # Fixed fleets route through the array-native fast paths when
            # the router's decision rule is known exactly; any Router
            # subclass (including subclasses of the built-ins, which may
            # override select) goes through the generic snapshot loop.
            router_type = type(self.router)
            if router_type is RoundRobinRouter:
                self._route_round_robin(
                    ordered, runs, assignments, routed_tokens
                )
            elif router_type in (LeastOutstandingTokensRouter, KvAwareRouter):
                self._route_columnar(ordered, runs, assignments, routed_tokens)
            else:
                self._route_generic(
                    ordered, runs, assignments, routed_tokens, None
                )
        if ops is not None:
            ops.apply_until(None)
        per_replica = tuple(run.finish() for run in runs)
        self.events = [run.events for run in runs]
        self.assignments = [tuple(assigned) for assigned in assignments]
        self._last_trace = tuple(ordered)
        return self._pool(per_replica, ordered, routed_tokens, ops)

    # -- routing paths --------------------------------------------------
    @property
    def _profiling(self) -> bool:
        return bool(self._simulator_kwargs.get("profile"))

    def _route_generic(
        self,
        ordered: "list[Request]",
        runs: "list[SimulationRun]",
        assignments: "list[list[Request]]",
        routed_tokens: "list[int]",
        ops: "_OpsState | None",
    ) -> None:
        """The reference per-arrival loop: advance everything to each
        arrival, snapshot the eligible replicas, ask the router."""
        from time import perf_counter

        profile = self._profiling
        for request in ordered:
            arrival = request.arrival_s
            if ops is not None:
                ops.apply_until(arrival)
                for index, run in enumerate(runs):
                    if ops.alive[index]:
                        run.advance_until(arrival)
                ops.autoscale(arrival)
                candidates = ops.eligible(arrival)
                if not candidates:
                    raise RuntimeError(
                        f"no eligible replica for request "
                        f"{request.request_id} at {arrival:.6f}s (every "
                        "replica is failed, draining or warming up)"
                    )
            else:
                for run in runs:
                    run.advance_until(arrival)
                candidates = list(range(len(runs)))
            routed_at = perf_counter() if profile else 0.0
            snapshots = [
                _snapshot(index, runs[index], assignments, routed_tokens, request)
                for index in candidates
            ]
            choice = self.router.select(snapshots, request)
            if choice not in set(candidates):
                raise ValueError(
                    f"router {self.router.name!r} chose replica {choice} of "
                    f"{len(runs)} (eligible: {candidates})"
                )
            runs[choice].offer(request)
            assignments[choice].append(request)
            routed_tokens[choice] += request.total_tokens
            if profile:
                self.route_s += perf_counter() - routed_at

    def _route_round_robin(
        self,
        ordered: "list[Request]",
        runs: "list[SimulationRun]",
        assignments: "list[list[Request]]",
        routed_tokens: "list[int]",
    ) -> None:
        """Whole-trace bucketing for the round-robin router.

        Round-robin is blind to replica state, so with a fixed fleet its
        choice for the k-th arrival is ``k mod R`` no matter when the
        decision is made — the entire trace buckets up front and each
        replica plays its bucket independently through one
        :meth:`~repro.serving.simulator.SimulationRun.offer_many`.  This
        replaces ``R`` advances plus a snapshot build *per arrival* with
        one bulk offer per replica; results are identical because a run's
        outcome never depends on when (only in what order) its requests
        were offered, which the cluster differential suite pins.
        """
        from time import perf_counter

        routed_at = perf_counter() if self._profiling else 0.0
        count = len(runs)
        for index in range(count):
            bucket = ordered[index::count]
            runs[index].offer_many(bucket)
            assignments[index].extend(bucket)
            routed_tokens[index] = sum(
                request.total_tokens for request in bucket
            )
        # Keep the rotation counter where the per-arrival loop would have
        # left it, so external observers (and a later generic-path call on
        # the same router instance) see the same state.
        self.router._next += len(ordered)
        if self._profiling:
            self.route_s += perf_counter() - routed_at

    def _route_columnar(
        self,
        ordered: "list[Request]",
        runs: "list[SimulationRun]",
        assignments: "list[list[Request]]",
        routed_tokens: "list[int]",
    ) -> None:
        """Per-arrival routing over columnar replica state for the
        built-in state-dependent routers.

        Causality is identical to the generic loop — every replica with
        live work is advanced to each arrival before the decision — but
        the decision itself reads the two O(1) columns the built-in
        routers score on (outstanding tokens, free KV pages — plus the
        resident-prefix pages of the arriving request's group for the
        kv-aware rule, looked up only when the request shares a prefix)
        directly from the runs instead of materializing a
        ``ReplicaSnapshot`` dataclass per replica per arrival, and idle
        replicas (nothing queued or in flight — advancing them cannot
        change any router-visible column) skip the advance call entirely.
        """
        from time import perf_counter

        profile = self._profiling
        lot = type(self.router) is LeastOutstandingTokensRouter
        count = len(runs)
        for request in ordered:
            arrival = request.arrival_s
            for run in runs:
                if run.outstanding_requests:
                    run.advance_until(arrival)
            routed_at = perf_counter() if profile else 0.0
            if lot:
                best = 0
                best_tokens = runs[0].outstanding_tokens
                for index in range(1, count):
                    tokens = runs[index].outstanding_tokens
                    if tokens < best_tokens:
                        best = index
                        best_tokens = tokens
            else:
                prefix_id = request.prefix_id
                best = 0
                best_free = runs[0].kv.free_pages
                if prefix_id >= 0:
                    best_free += runs[0].kv.resident_prefix_pages(prefix_id)
                for index in range(1, count):
                    free = runs[index].kv.free_pages
                    if prefix_id >= 0:
                        free += runs[index].kv.resident_prefix_pages(prefix_id)
                    if free > best_free:
                        best = index
                        best_free = free
            runs[best].offer(request)
            assignments[best].append(request)
            routed_tokens[best] += request.total_tokens
            if profile:
                self.route_s += perf_counter() - routed_at

    def pooled_phase_s(self) -> dict[str, float]:
        """Per-phase wall breakdown of the last ``simulate()``, pooled
        across replicas, plus the cluster's own ``route`` phase.

        Populated when the replicas were built with ``profile=True``
        (``repro serve --profile`` arranges this); phases absent from an
        engine are simply missing from the dict.
        """
        pooled: dict[str, float] = {}
        for run in getattr(self, "_last_runs", ()):
            for name, seconds in getattr(run, "phase_s", {}).items():
                pooled[name] = pooled.get(name, 0.0) + seconds
        pooled["route"] = getattr(self, "route_s", 0.0)
        return pooled

    def validate_invariants(self) -> list[str]:
        """Replay the last run's event logs through the invariant checker.

        Fixed fleets replay each replica's log against its exact
        assignment (:func:`~repro.serving.validate.check_invariants`);
        with a failure schedule or autoscaler active, failover
        legitimately moves requests between replicas, so the cross-replica
        books are balanced instead
        (:func:`~repro.serving.validate.check_cluster_invariants`).
        """
        if self.events is None or self.assignments is None:
            raise RuntimeError("validate_invariants() needs a simulate() first")
        if any(events is None for events in self.events):
            raise RuntimeError(
                "validate_invariants() needs simulate(record_events=True)"
            )
        if self._ops_active:
            reference = self.replicas[0]
            return check_cluster_invariants(
                self.events,
                self._last_trace or (),
                page_tokens=reference.page_tokens,
                admission=reference.admission,
                initial_replicas=self._initial_count,
                default_model=self.model.name,
            )
        violations: list[str] = []
        for index, (events, assigned) in enumerate(
            zip(self.events, self.assignments)
        ):
            replica = self.replicas[index]
            violations.extend(
                f"replica {index}: {violation}"
                for violation in check_invariants(
                    events,
                    assigned,
                    page_tokens=replica.page_tokens,
                    admission=replica.admission,
                    default_model=self.model.name,
                )
            )
        return violations

    # ------------------------------------------------------------------
    def _pool(
        self,
        per_replica: tuple[ServingMetrics, ...],
        ordered: "list[Request]",
        routed_tokens: "list[int]",
        ops: "_OpsState | None" = None,
    ) -> ClusterMetrics:
        pooled: list[RequestMetrics] = sorted(
            (
                request_metrics
                for metrics in per_replica
                for request_metrics in metrics.per_request
            ),
            key=lambda metrics: metrics.request_id,
        )
        makespan = 0.0
        last_completion = ordered[0].arrival_s if ordered else 0.0
        if pooled and ordered:
            last_completion = max(m.completion_s for m in pooled)
            makespan = last_completion - ordered[0].arrival_s
        busy = sum(metrics.busy_s for metrics in per_replica)
        # One definition of utilization for both paths: summed busy over
        # summed provisioned replica-seconds.  The paths differ only in
        # where replica_seconds comes from — metered billing segments
        # under ops, R x makespan for a fixed fleet (a fleet with an
        # inert schedule meters to exactly R x makespan, so the two
        # agree wherever both apply).
        if ops is not None:
            ops.close_out(last_completion)
            replica_seconds = sum(ops.seconds)
            peak_replicas = ops.peak_replicas
        else:
            replica_seconds = len(per_replica) * makespan
            peak_replicas = len(per_replica)
        utilization = busy / replica_seconds if replica_seconds > 0 else 0.0
        output_tokens = sum(metrics.output_tokens for metrics in per_replica)
        latencies = [metrics.latency_s for metrics in pooled]
        ttfts = [metrics.ttft_s for metrics in pooled]
        tpots = [metrics.tpot_s for metrics in pooled if metrics.output_tokens > 1]
        mean = lambda values: sum(values) / len(values) if values else 0.0  # noqa: E731
        scored = [metrics for metrics in pooled if metrics.slo_s > 0.0]
        models = per_replica[0].models
        slo_attainment: "float | None" = None
        slo_by_class: dict[str, float] = {}
        slo_by_model_class: dict[str, float] = {}
        if any(metrics.slo_attainment is not None for metrics in per_replica):
            if scored:
                slo_attainment = mean([1.0 if m.slo_met else 0.0 for m in scored])
                slo_by_class = {
                    str(cls): mean(
                        [
                            1.0 if m.slo_met else 0.0
                            for m in scored
                            if m.priority_class == cls
                        ]
                    )
                    for cls in sorted({m.priority_class for m in scored})
                }
                if len(models) > 1:
                    pairs = sorted(
                        {
                            (m.model or self.model.name, m.priority_class)
                            for m in scored
                        }
                    )
                    slo_by_model_class = {
                        f"{name}/{cls}": mean(
                            [
                                1.0 if m.slo_met else 0.0
                                for m in scored
                                if (m.model or self.model.name) == name
                                and m.priority_class == cls
                            ]
                        )
                        for name, cls in pairs
                    }
            else:
                slo_attainment = 1.0
        # Imbalance is a skew ratio over the replicas that actually
        # participated in routing.  A replica that never received an
        # arrival (spawned after the trace drained, or dead before its
        # first request) says nothing about routing skew — including it
        # used to render the ratio as a meaningless ``inf``.
        routed_nonzero = [tokens for tokens in routed_tokens if tokens > 0]
        if len(routed_nonzero) < 2:
            imbalance = 1.0
        else:
            imbalance = max(routed_nonzero) / min(routed_nonzero)
        if self.events is not None and all(
            events is not None for events in self.events
        ):
            kv_peak = cluster_kv_peak(self.events)
        else:
            kv_peak = sum(metrics.kv_peak_pages for metrics in per_replica)
        return ClusterMetrics(
            backend=self.cost_model.name,
            model=self.model.name,
            policy=per_replica[0].policy,
            router=self.router.name,
            admission=per_replica[0].admission,
            num_replicas=len(per_replica),
            num_requests=len(pooled),
            makespan_s=makespan,
            busy_s=busy,
            utilization=utilization,
            output_tokens=output_tokens,
            tokens_per_s=output_tokens / makespan if makespan > 0 else 0.0,
            requests_per_s=len(pooled) / makespan if makespan > 0 else 0.0,
            latency_mean_s=mean(latencies),
            latency_p50_s=percentile(latencies, 50.0),
            latency_p99_s=percentile(latencies, 99.0),
            ttft_mean_s=mean(ttfts),
            ttft_p50_s=percentile(ttfts, 50.0),
            ttft_p99_s=percentile(ttfts, 99.0),
            tpot_mean_s=mean(tpots),
            energy_j=sum(metrics.energy_j for metrics in per_replica),
            flops=sum(metrics.flops for metrics in per_replica),
            admissions=sum(metrics.admissions for metrics in per_replica),
            peak_active=sum(metrics.peak_active for metrics in per_replica),
            preemptions=sum(metrics.preemptions for metrics in per_replica),
            recomputed_tokens=sum(
                metrics.recomputed_tokens for metrics in per_replica
            ),
            routed_requests=tuple(
                metrics.num_requests for metrics in per_replica
            ),
            routed_tokens=tuple(routed_tokens),
            load_imbalance=imbalance,
            kv_peak_pages=kv_peak,
            kv_pages_total=sum(metrics.kv_pages_total for metrics in per_replica),
            slo_attainment=slo_attainment,
            slo_by_class=slo_by_class,
            failure_schedule=(
                self.failures.name if self.failures is not None else "none"
            ),
            autoscaler=(
                self.autoscaler.name if self.autoscaler is not None else "fixed"
            ),
            failures=ops.failures if ops is not None else 0,
            recoveries=ops.recoveries if ops is not None else 0,
            rerouted_requests=ops.rerouted if ops is not None else 0,
            dropped_kv_pages=ops.dropped_pages if ops is not None else 0,
            scale_ups=ops.scale_ups if ops is not None else 0,
            scale_downs=ops.scale_downs if ops is not None else 0,
            replica_seconds=replica_seconds,
            peak_replicas=peak_replicas,
            warmup_s=self._warmup_s,
            models=models,
            model_swaps=sum(metrics.model_swaps for metrics in per_replica),
            model_swap_s=sum(metrics.model_swap_s for metrics in per_replica),
            slo_by_model_class=slo_by_model_class,
            per_replica=per_replica,
            per_request=tuple(pooled),
        )
