"""Multi-replica cluster serving: request routing over replicated devices.

One IANUS appliance (or GPU) is a *replica*: a cost model plus a KV page
accountant, simulated by :class:`~repro.serving.simulator.ServingSimulator`.
A :class:`ClusterSimulator` fans a single arrival trace out over ``R``
replicas through a pluggable :class:`Router` and pools the per-replica
metrics into one :class:`ClusterMetrics` — the serving-layer counterpart of
the paper's Sec. 7.1 scale-out, but at *request* rather than tensor
granularity (each replica may itself be a multi-device cluster via
``make_cost_model("ianus-xN")``).

Routing is **online and causal**: requests are routed one at a time in
arrival order, and before each decision every replica is advanced to the
arrival instant (:meth:`~repro.serving.simulator.SimulationRun.advance_until`),
so the router sees exactly the state a real load balancer would — queue
depths, outstanding tokens and free KV pages as of that moment, never the
future.  Routers:

``round-robin``
    Ignore state, rotate.  The baseline every balancer is measured against.
``least-outstanding-tokens``
    Route to the replica with the fewest prompt+output tokens still to
    compute (queued or in flight) — join-shortest-queue in token units.
``kv-aware``
    Route to the replica with the most free KV pages.  Free pages track
    both load and *memory* pressure, which is what actually gates admission
    under paged-KV serving; under skewed traces this keeps the heavy tail
    from piling onto one replica's pool.

A one-replica cluster reproduces the single-device simulator **byte for
byte** under every router (all decisions collapse to replica 0, and the
run prices passes over the same anchor grid), which is the differential
test pinning this layer to PR 3/4's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.costmodel import CostModel
from repro.models.transformer import ModelConfig
from repro.serving.request import Request, RequestMetrics
from repro.serving.simulator import (
    ServingMetrics,
    ServingSimulator,
    SimulationRun,
    _decode_kv_bounds,
    _validated_construct,
    percentile,
)
from repro.serving.validate import check_invariants

__all__ = [
    "ReplicaSnapshot",
    "Router",
    "RoundRobinRouter",
    "LeastOutstandingTokensRouter",
    "KvAwareRouter",
    "ROUTERS",
    "make_router",
    "ClusterMetrics",
    "ClusterSimulator",
    "cluster_kv_peak",
]


# ----------------------------------------------------------------------
# Routers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReplicaSnapshot:
    """What a router may observe about one replica at an arrival instant."""

    index: int
    #: Requests routed here and not yet completed (queued or in flight).
    outstanding_requests: int
    #: Prompt + output tokens not yet computed across those requests.
    outstanding_tokens: int
    #: Uncommitted pages of the replica's KV pool right now.
    free_kv_pages: int
    total_kv_pages: int
    #: Requests / total tokens ever routed to this replica.
    routed_requests: int
    routed_tokens: int


class Router:
    """Chooses the replica that serves the next arrival.

    ``select`` sees one :class:`ReplicaSnapshot` per replica (index order)
    plus the arriving request, and returns a replica index.  Routers may
    keep internal state (round-robin does); ``reset`` is called at the
    start of every cluster simulation so a reused
    :class:`ClusterSimulator` stays deterministic run over run.
    """

    name = "router"

    def reset(self) -> None:
        """Drop any per-simulation state (no-op for stateless routers)."""

    def select(
        self, replicas: "Sequence[ReplicaSnapshot]", request: Request
    ) -> int:
        raise NotImplementedError


class RoundRobinRouter(Router):
    """Rotate through replicas, blind to their state."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def reset(self) -> None:
        self._next = 0

    def select(self, replicas, request):
        choice = self._next % len(replicas)
        self._next += 1
        return choice


class LeastOutstandingTokensRouter(Router):
    """Join-shortest-queue in token units (ties: lowest replica index)."""

    name = "least-outstanding-tokens"

    def select(self, replicas, request):
        return min(
            replicas, key=lambda state: (state.outstanding_tokens, state.index)
        ).index


class KvAwareRouter(Router):
    """Route to the replica with the most free KV pages (ties: lowest index)."""

    name = "kv-aware"

    def select(self, replicas, request):
        return min(
            replicas, key=lambda state: (-state.free_kv_pages, state.index)
        ).index


#: Router registry: CLI/experiment name -> class, in presentation order.
ROUTERS: dict[str, type[Router]] = {
    "round-robin": RoundRobinRouter,
    "least-outstanding-tokens": LeastOutstandingTokensRouter,
    "kv-aware": KvAwareRouter,
}


def make_router(name: str, **kwargs) -> Router:
    """Instantiate a router by name — the single validation point.

    Unknown names raise with the list of known routers; keyword arguments
    the named router does not accept raise instead of being dropped (the
    same validated construction path as
    :func:`~repro.serving.simulator.make_policy`).
    """
    return _validated_construct("router", ROUTERS, name, kwargs)


# ----------------------------------------------------------------------
# Cluster-wide KV peak
# ----------------------------------------------------------------------
def cluster_kv_peak(event_logs: "Sequence[Sequence]") -> int:
    """Peak *summed* reserved KV pages across replicas at any event instant.

    Merges the replicas' event logs in clock order (each log's
    ``kv_reserved_pages`` is a step function over its own events) and
    tracks the maximum of the sum — the cluster-wide high-water mark, which
    is lower than the sum of per-replica peaks whenever the replicas peak
    at different times.
    """
    merged = sorted(
        (
            (event.clock_s, replica_index, sequence, event.kv_reserved_pages)
            for replica_index, events in enumerate(event_logs)
            for sequence, event in enumerate(events)
        ),
        key=lambda item: (item[0], item[1], item[2]),
    )
    current = [0] * len(event_logs)
    peak = 0
    for _, replica_index, _, reserved in merged:
        current[replica_index] = reserved
        total = sum(current)
        if total > peak:
            peak = total
    return peak


# ----------------------------------------------------------------------
# Pooled metrics
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClusterMetrics:
    """Pooled metrics of one cluster simulation (plus per-replica detail)."""

    backend: str
    model: str
    policy: str
    router: str
    admission: str
    num_replicas: int
    num_requests: int
    makespan_s: float
    busy_s: float
    utilization: float
    output_tokens: int
    tokens_per_s: float
    requests_per_s: float
    latency_mean_s: float
    latency_p50_s: float
    latency_p99_s: float
    ttft_mean_s: float
    ttft_p50_s: float
    ttft_p99_s: float
    tpot_mean_s: float
    energy_j: float
    flops: float
    admissions: int
    peak_active: int
    preemptions: int
    recomputed_tokens: int
    #: Requests / tokens routed to each replica, in replica order.
    routed_requests: tuple[int, ...]
    routed_tokens: tuple[int, ...]
    #: max/min routed tokens over replicas (inf when a replica got nothing).
    load_imbalance: float
    #: Cluster-wide instantaneous KV peak (summed across replicas).
    kv_peak_pages: int
    kv_pages_total: int
    slo_attainment: "float | None" = None
    slo_by_class: dict = field(default_factory=dict)
    per_replica: tuple[ServingMetrics, ...] = field(default_factory=tuple)
    per_request: tuple[RequestMetrics, ...] = field(default_factory=tuple)

    def to_dict(
        self, include_requests: bool = True, include_replicas: bool = True
    ) -> dict:
        """JSON-stable representation (reports and determinism tests)."""
        data = {
            "backend": self.backend,
            "model": self.model,
            "policy": self.policy,
            "router": self.router,
            "admission": self.admission,
            "num_replicas": self.num_replicas,
            "num_requests": self.num_requests,
            "makespan_s": self.makespan_s,
            "busy_s": self.busy_s,
            "utilization": self.utilization,
            "output_tokens": self.output_tokens,
            "tokens_per_s": self.tokens_per_s,
            "requests_per_s": self.requests_per_s,
            "latency_mean_s": self.latency_mean_s,
            "latency_p50_s": self.latency_p50_s,
            "latency_p99_s": self.latency_p99_s,
            "ttft_mean_s": self.ttft_mean_s,
            "ttft_p50_s": self.ttft_p50_s,
            "ttft_p99_s": self.ttft_p99_s,
            "tpot_mean_s": self.tpot_mean_s,
            "energy_j": self.energy_j,
            "flops": self.flops,
            "admissions": self.admissions,
            "peak_active": self.peak_active,
            "preemptions": self.preemptions,
            "recomputed_tokens": self.recomputed_tokens,
            "routed_requests": list(self.routed_requests),
            "routed_tokens": list(self.routed_tokens),
            "load_imbalance": self.load_imbalance,
            "kv_peak_pages": self.kv_peak_pages,
            "kv_pages_total": self.kv_pages_total,
            "slo_attainment": self.slo_attainment,
            "slo_by_class": self.slo_by_class,
        }
        if include_replicas:
            data["per_replica"] = [
                metrics.to_dict(include_requests=False)
                for metrics in self.per_replica
            ]
        if include_requests:
            data["per_request"] = [metrics.to_dict() for metrics in self.per_request]
        return data

    def summary(self) -> str:
        """Multi-line human-readable summary (``repro serve`` prints this)."""
        routed = ", ".join(
            f"r{index}: {count} req / {tokens} tok"
            for index, (count, tokens) in enumerate(
                zip(self.routed_requests, self.routed_tokens)
            )
        )
        imbalance = (
            "inf" if self.load_imbalance == float("inf")
            else f"{self.load_imbalance:.2f}x"
        )
        lines = [
            f"cluster         : {self.num_replicas} x {self.backend} "
            f"(router {self.router}, {self.admission} admission)",
            f"model           : {self.model}",
            f"policy          : {self.policy}",
            f"requests        : {self.num_requests} "
            f"({self.output_tokens} output tokens)",
            f"routing         : {routed} (imbalance {imbalance})",
            f"makespan        : {self.makespan_s:.3f} s "
            f"(summed busy {self.busy_s:.3f} s, {self.utilization:.0%} utilized)",
            f"throughput      : {self.tokens_per_s:.1f} tokens/s, "
            f"{self.requests_per_s:.2f} requests/s",
            f"latency         : mean {self.latency_mean_s * 1e3:.1f} ms, "
            f"p50 {self.latency_p50_s * 1e3:.1f} ms, "
            f"p99 {self.latency_p99_s * 1e3:.1f} ms",
            f"TTFT            : mean {self.ttft_mean_s * 1e3:.1f} ms, "
            f"p99 {self.ttft_p99_s * 1e3:.1f} ms",
            f"TPOT            : mean {self.tpot_mean_s * 1e3:.3f} ms/token",
            f"admission       : {self.admissions} admits, "
            f"peak {self.peak_active} in flight, "
            f"{self.preemptions} preemptions "
            f"({self.recomputed_tokens} tokens recomputed)",
            f"cluster KV peak : {self.kv_peak_pages}/{self.kv_pages_total} "
            "pages (summed across replicas)",
            f"dynamic energy  : {self.energy_j * 1e3:.1f} mJ",
        ]
        if self.slo_attainment is not None:
            by_class = ", ".join(
                f"class {cls}: {attained:.0%}"
                for cls, attained in self.slo_by_class.items()
            )
            lines.append(
                f"SLO attainment  : {self.slo_attainment:.0%}"
                + (f" ({by_class})" if by_class else "")
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Cluster simulator
# ----------------------------------------------------------------------
class ClusterSimulator:
    """Fan one trace out over ``num_replicas`` identical replicas.

    Parameters
    ----------
    cost_model:
        The per-replica backend (shared across replicas: pass costs are
        pure and cached, so sharing one instance is safe and warm).  Use
        ``make_cost_model("ianus-xN")`` for replicas that are themselves
        multi-device.
    model:
        The served model.
    num_replicas:
        Replica count ``R``.
    router:
        A name in :data:`ROUTERS` or a :class:`Router` instance.
    **simulator_kwargs:
        Everything else (policy, admission, preempt, kv_fraction, ...) is
        forwarded to each replica's
        :class:`~repro.serving.simulator.ServingSimulator`.
    """

    def __init__(
        self,
        cost_model: CostModel,
        model: ModelConfig,
        num_replicas: int = 2,
        router: "Router | str" = "round-robin",
        **simulator_kwargs,
    ) -> None:
        if num_replicas < 1:
            raise ValueError("num_replicas must be at least 1")
        self.cost_model = cost_model
        self.model = model
        self.router = make_router(router) if isinstance(router, str) else router
        self.replicas = [
            ServingSimulator(cost_model, model, **simulator_kwargs)
            for _ in range(num_replicas)
        ]
        #: Per-replica event logs of the last simulate() (None entries when
        #: events were not recorded).
        self.events: "list[list] | None" = None
        #: Per-replica request assignments of the last simulate().
        self.assignments: "list[tuple[Request, ...]] | None" = None

    @property
    def num_replicas(self) -> int:
        return len(self.replicas)

    # ------------------------------------------------------------------
    def simulate(
        self, requests: Sequence[Request], record_events: bool = True
    ) -> ClusterMetrics:
        """Route and play a trace to completion; returns pooled metrics.

        Events are recorded by default: they feed the cluster-wide KV peak
        and let every simulation self-validate
        (:meth:`validate_invariants`); pass ``record_events=False`` to
        skip both (the KV peak then falls back to the summed per-replica
        peaks, an upper bound).
        """
        ordered = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        bounds = _decode_kv_bounds(ordered)
        # A reused simulator must stay deterministic: stateful routers
        # (round-robin's rotation) restart with every simulation.
        self.router.reset()
        runs: list[SimulationRun] = [
            replica.begin(record_events=record_events, kv_bounds=bounds)
            for replica in self.replicas
        ]
        assignments: list[list[Request]] = [[] for _ in runs]
        routed_tokens = [0] * len(runs)
        for request in ordered:
            for run in runs:
                run.advance_until(request.arrival_s)
            snapshots = [
                ReplicaSnapshot(
                    index=index,
                    outstanding_requests=run.outstanding_requests,
                    outstanding_tokens=run.outstanding_tokens,
                    free_kv_pages=run.kv.free_pages,
                    total_kv_pages=run.kv.total_pages,
                    routed_requests=len(assignments[index]),
                    routed_tokens=routed_tokens[index],
                )
                for index, run in enumerate(runs)
            ]
            choice = self.router.select(snapshots, request)
            if not 0 <= choice < len(runs):
                raise ValueError(
                    f"router {self.router.name!r} chose replica {choice} of "
                    f"{len(runs)}"
                )
            runs[choice].offer(request)
            assignments[choice].append(request)
            routed_tokens[choice] += request.total_tokens
        per_replica = tuple(run.finish() for run in runs)
        self.events = [run.events for run in runs]
        self.assignments = [tuple(assigned) for assigned in assignments]
        return self._pool(per_replica, ordered, routed_tokens)

    def validate_invariants(self) -> list[str]:
        """Replay every replica's event log through the extended checker."""
        if self.events is None or self.assignments is None:
            raise RuntimeError("validate_invariants() needs a simulate() first")
        violations: list[str] = []
        for index, (events, assigned) in enumerate(
            zip(self.events, self.assignments)
        ):
            if events is None:
                raise RuntimeError(
                    "validate_invariants() needs simulate(record_events=True)"
                )
            replica = self.replicas[index]
            violations.extend(
                f"replica {index}: {violation}"
                for violation in check_invariants(
                    events,
                    assigned,
                    page_tokens=replica.page_tokens,
                    admission=replica.admission,
                )
            )
        return violations

    # ------------------------------------------------------------------
    def _pool(
        self,
        per_replica: tuple[ServingMetrics, ...],
        ordered: "list[Request]",
        routed_tokens: "list[int]",
    ) -> ClusterMetrics:
        pooled: list[RequestMetrics] = sorted(
            (
                request_metrics
                for metrics in per_replica
                for request_metrics in metrics.per_request
            ),
            key=lambda metrics: metrics.request_id,
        )
        makespan = 0.0
        if pooled and ordered:
            makespan = max(m.completion_s for m in pooled) - ordered[0].arrival_s
        busy = sum(metrics.busy_s for metrics in per_replica)
        output_tokens = sum(metrics.output_tokens for metrics in per_replica)
        latencies = [metrics.latency_s for metrics in pooled]
        ttfts = [metrics.ttft_s for metrics in pooled]
        tpots = [metrics.tpot_s for metrics in pooled if metrics.output_tokens > 1]
        mean = lambda values: sum(values) / len(values) if values else 0.0  # noqa: E731
        scored = [metrics for metrics in pooled if metrics.slo_s > 0.0]
        slo_attainment: "float | None" = None
        slo_by_class: dict[str, float] = {}
        if any(metrics.slo_attainment is not None for metrics in per_replica):
            if scored:
                slo_attainment = mean([1.0 if m.slo_met else 0.0 for m in scored])
                slo_by_class = {
                    str(cls): mean(
                        [
                            1.0 if m.slo_met else 0.0
                            for m in scored
                            if m.priority_class == cls
                        ]
                    )
                    for cls in sorted({m.priority_class for m in scored})
                }
            else:
                slo_attainment = 1.0
        max_tokens, min_tokens = max(routed_tokens), min(routed_tokens)
        if max_tokens == 0:
            imbalance = 1.0
        elif min_tokens == 0:
            imbalance = float("inf")
        else:
            imbalance = max_tokens / min_tokens
        if self.events is not None and all(
            events is not None for events in self.events
        ):
            kv_peak = cluster_kv_peak(self.events)
        else:
            kv_peak = sum(metrics.kv_peak_pages for metrics in per_replica)
        return ClusterMetrics(
            backend=self.cost_model.name,
            model=self.model.name,
            policy=per_replica[0].policy,
            router=self.router.name,
            admission=per_replica[0].admission,
            num_replicas=len(per_replica),
            num_requests=len(pooled),
            makespan_s=makespan,
            busy_s=busy,
            utilization=(
                busy / (len(per_replica) * makespan) if makespan > 0 else 0.0
            ),
            output_tokens=output_tokens,
            tokens_per_s=output_tokens / makespan if makespan > 0 else 0.0,
            requests_per_s=len(pooled) / makespan if makespan > 0 else 0.0,
            latency_mean_s=mean(latencies),
            latency_p50_s=percentile(latencies, 50.0),
            latency_p99_s=percentile(latencies, 99.0),
            ttft_mean_s=mean(ttfts),
            ttft_p50_s=percentile(ttfts, 50.0),
            ttft_p99_s=percentile(ttfts, 99.0),
            tpot_mean_s=mean(tpots),
            energy_j=sum(metrics.energy_j for metrics in per_replica),
            flops=sum(metrics.flops for metrics in per_replica),
            admissions=sum(metrics.admissions for metrics in per_replica),
            peak_active=sum(metrics.peak_active for metrics in per_replica),
            preemptions=sum(metrics.preemptions for metrics in per_replica),
            recomputed_tokens=sum(
                metrics.recomputed_tokens for metrics in per_replica
            ),
            routed_requests=tuple(
                metrics.num_requests for metrics in per_replica
            ),
            routed_tokens=tuple(routed_tokens),
            load_imbalance=imbalance,
            kv_peak_pages=kv_peak,
            kv_pages_total=sum(metrics.kv_pages_total for metrics in per_replica),
            slo_attainment=slo_attainment,
            slo_by_class=slo_by_class,
            per_replica=per_replica,
            per_request=tuple(pooled),
        )
