"""Discrete-event request-level serving simulator over the cost-model layer.

:class:`ServingSimulator` plays a trace of
:class:`~repro.serving.request.Request` objects against one device whose
per-pass costs come from any :class:`~repro.core.costmodel.CostModel` — the
IANUS simulator, the NPU-MEM variant, or the A100/DFX analytical baselines.
Time advances at *pass* granularity (one prefill pass or one decode
iteration at a time), which is exactly the scheduling granularity of
iteration-level serving systems (Orca, vLLM): between any two passes the
scheduler may admit new arrivals or change the decode batch.

Scheduling policies
-------------------
:class:`FcfsPolicy`
    Classic run-to-completion: requests are served one at a time in arrival
    order; an arrival behind a long generation waits for the whole request.
:class:`InterleavedPolicy`
    Continuous batching: up to ``max_batch`` requests are in flight; new
    arrivals are prefilled as soon as a slot is free (prefill priority, one
    prefill per iteration), and all in-flight requests advance one token per
    fused decode iteration.

Batched-decode cost model
-------------------------
The cost layer prices *single-request* passes, so the simulator derives the
cost of a fused decode iteration from it explicitly.  Decode passes on every
evaluated backend are dominated by streaming the FC weights, which a batch
shares; the per-request remainder (KV-cache traffic, attention) is not
shared.  With ``c(kv)`` the single-request decode cost and ``base = c(1)``
(the weight-streaming plus fixed-overhead floor), a batch at KV lengths
``kv_1..kv_B`` is charged::

    latency = sum_i c(kv_i).latency - share * (B - 1) * base.latency

i.e. the shared floor is paid once and every request pays its KV-dependent
marginal, floored at the slowest member (a fused pass cannot beat its
largest request).  ``share`` (default 1.0) scales how much of the floor is
shareable; ``share=0`` recovers fully serial decoding.  A batch of one is by
construction *exactly* the single-request pass cost, which is what makes a
one-request trace reproduce ``IanusSystem.run(mode="exact")`` latency.
Energy follows the same sharing (shared weight reads are shared DRAM
energy); FLOPs sum fully — batching shares bytes, not math.

Pass-cost provider
------------------
:class:`PassCostProvider` fronts the cost model: prefill costs are always
priced exactly (few distinct prompt lengths per mix), decode costs either
exactly per KV length (``exact=True``) or by piecewise-linear interpolation
over ``kv_samples`` anchor lengths — the serving-level counterpart of the
fast generation mode of :meth:`repro.core.system.IanusSystem.run`, and the
reason a load sweep touches a handful of simulated passes instead of
thousands.  Every anchor evaluation routes through the backend's shared
(persistently cacheable) pass-cost cache.
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.costmodel import CostModel, PassCost, lerp_pass_cost
from repro.energy.model import EnergyBreakdown
from repro.models.transformer import ModelConfig
from repro.models.workload import Stage, StagePass
from repro.serving.request import Request, RequestMetrics

__all__ = [
    "PassCostProvider",
    "ServingPolicy",
    "FcfsPolicy",
    "InterleavedPolicy",
    "POLICIES",
    "make_policy",
    "ServingMetrics",
    "ServingSimulator",
    "mean_service_time_s",
    "percentile",
]

#: Default number of KV-length anchors of the interpolating provider.
DEFAULT_KV_SAMPLES = 9


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile with linear interpolation between ranks.

    Deterministic and dependency-free (no numpy): sort, place ``q`` on the
    ``(n - 1)``-step rank axis, interpolate between the two bracketing
    order statistics.
    """
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    position = q / 100.0 * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    return ordered[lower] + weight * (ordered[upper] - ordered[lower])


# ----------------------------------------------------------------------
# Pass-cost provider
# ----------------------------------------------------------------------
class PassCostProvider:
    """Exact or KV-interpolating per-pass costing over one cost model."""

    def __init__(
        self,
        cost_model: CostModel,
        model: ModelConfig,
        exact: bool = False,
        kv_samples: int = DEFAULT_KV_SAMPLES,
    ) -> None:
        if kv_samples < 2:
            raise ValueError("kv_samples must be at least 2")
        self.cost_model = cost_model
        self.model = model
        self.exact = exact
        self.kv_samples = kv_samples
        self._prefill_costs: dict[int, PassCost] = {}
        #: Exactly-priced decode costs — valid forever, kept across prepare().
        self._exact_costs: dict[int, PassCost] = {}
        #: Interpolated decode costs — anchor-grid-dependent, cleared by
        #: prepare() so a reused provider never mixes two grids.
        self._interp_costs: dict[int, PassCost] = {}
        self._anchors: list[int] = []

    # ------------------------------------------------------------------
    def prepare(self, kv_min: int, kv_max: int) -> None:
        """Choose the decode anchor grid for a known KV range.

        Anchors are evaluated lazily; ``prepare`` only fixes their
        positions.  KV length 1 is always an anchor — it is the shared
        ``base`` of the fused-decode cost model.  Interpolated costs from a
        previous grid are dropped, so reusing a provider (or simulator)
        across traces yields the same metrics as a fresh one.
        """
        if kv_max < kv_min:
            raise ValueError("kv_max must be at least kv_min")
        anchors = {1, kv_min, kv_max}
        if kv_max > kv_min:
            step = (kv_max - kv_min) / (self.kv_samples - 1)
            anchors.update(
                int(round(kv_min + i * step)) for i in range(self.kv_samples)
            )
        self._anchors = sorted(anchors)
        self._interp_costs.clear()

    def prefill(self, input_tokens: int) -> PassCost:
        """Cost of the summarization (prefill) pass — always exact."""
        cost = self._prefill_costs.get(input_tokens)
        if cost is None:
            cost = self.cost_model.pass_cost(
                self.model,
                StagePass(Stage.SUMMARIZATION, input_tokens, input_tokens),
            )
            self._prefill_costs[input_tokens] = cost
        return cost

    def decode(self, kv_length: int) -> PassCost:
        """Cost of one single-request decode pass at ``kv_length``."""
        cost = self._exact_costs.get(kv_length)
        if cost is not None:
            return cost
        if self.exact or kv_length in self._anchors or len(self._anchors) < 2:
            return self._decode_exact(kv_length)
        cost = self._interp_costs.get(kv_length)
        if cost is None:
            position = bisect.bisect_left(self._anchors, kv_length)
            position = min(max(position, 1), len(self._anchors) - 1)
            low, high = self._anchors[position - 1], self._anchors[position]
            weight = (kv_length - low) / (high - low)
            cost = lerp_pass_cost(
                self._decode_exact(low), self._decode_exact(high), weight
            )
            self._interp_costs[kv_length] = cost
        return cost

    def base(self) -> PassCost:
        """The KV-independent decode floor (``c(1)``): weights + overheads."""
        return self._decode_exact(1)

    def _decode_exact(self, kv_length: int) -> PassCost:
        cost = self._exact_costs.get(kv_length)
        if cost is None:
            cost = self.cost_model.pass_cost(
                self.model, StagePass(Stage.GENERATION, 1, kv_length)
            )
            self._exact_costs[kv_length] = cost
        return cost


def _decode_kv_bounds(items) -> "tuple[int, int] | None":
    """(min, max) decode KV length over requests or workloads, or ``None``.

    A request's decode passes span KV lengths ``input+1 .. input+output-1``
    (the prefill produces the first output token); items generating a single
    token contribute no decode pass.  Works on anything exposing
    ``input_tokens``/``output_tokens`` (:class:`~repro.serving.request.Request`,
    :class:`~repro.models.workload.Workload`).
    """
    bounds = [
        bound
        for item in items
        if item.output_tokens > 1
        for bound in (
            item.input_tokens + 1,
            item.input_tokens + item.output_tokens - 1,
        )
    ]
    if not bounds:
        return None
    return min(bounds), max(bounds)


def mean_service_time_s(
    cost_model: CostModel,
    model: ModelConfig,
    workloads: "Sequence",
    exact: bool = False,
    kv_samples: int = DEFAULT_KV_SAMPLES,
) -> float:
    """Mean run-to-completion service time of a workload mix (uniform weights).

    The reciprocal is the backend's nominal capacity in requests/s — the
    arrival rate at which an ideal, never-idle FCFS server would be exactly
    saturated.  Load sweeps use it to express offered load as a fraction of
    each backend's capacity, so curves are comparable across backends whose
    absolute speeds differ by an order of magnitude.
    """
    if not workloads:
        raise ValueError("workloads must be non-empty")
    provider = PassCostProvider(cost_model, model, exact=exact, kv_samples=kv_samples)
    kv_bounds = _decode_kv_bounds(workloads)
    if kv_bounds is not None:
        provider.prepare(*kv_bounds)
    total = 0.0
    for workload in workloads:
        service = provider.prefill(workload.input_tokens).latency_s
        for kv in range(
            workload.input_tokens + 1,
            workload.input_tokens + workload.output_tokens,
        ):
            service += provider.decode(kv).latency_s
        total += service
    return total / len(workloads)


# ----------------------------------------------------------------------
# Scheduling policies
# ----------------------------------------------------------------------
class ServingPolicy:
    """Decides what the device executes between two passes.

    ``admit`` answers whether the head of the waiting queue may be prefilled
    now; ``decode_batch`` picks the in-flight requests that advance one
    token in the next decode iteration.  Policies never reorder the waiting
    queue — admission is always in arrival order.
    """

    name = "policy"

    def admit(self, active_count: int) -> bool:
        raise NotImplementedError

    def decode_batch(self, active: "Sequence[_InFlight]") -> "list[_InFlight]":
        raise NotImplementedError


class FcfsPolicy(ServingPolicy):
    """First-come-first-served, run-to-completion, one request at a time."""

    name = "fcfs"

    def admit(self, active_count: int) -> bool:
        return active_count == 0

    def decode_batch(self, active):
        return list(active[:1])


class InterleavedPolicy(ServingPolicy):
    """Iteration-level continuous batching with prefill priority."""

    name = "interleaved"

    def __init__(self, max_batch: int = 8) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        self.max_batch = max_batch

    def admit(self, active_count: int) -> bool:
        return active_count < self.max_batch

    def decode_batch(self, active):
        return list(active[: self.max_batch])


POLICIES = {"fcfs": FcfsPolicy, "interleaved": InterleavedPolicy}


def make_policy(name: str, max_batch: int = 8) -> ServingPolicy:
    """Instantiate a scheduling policy by name."""
    if name == "fcfs":
        return FcfsPolicy()
    if name == "interleaved":
        return InterleavedPolicy(max_batch=max_batch)
    raise ValueError(f"unknown policy {name!r}; known: {', '.join(POLICIES)}")


# ----------------------------------------------------------------------
# Simulator
# ----------------------------------------------------------------------
@dataclass
class _InFlight:
    """Mutable in-flight request state (internal to the simulator)."""

    request: Request
    generated: int = 0
    first_token_s: float = 0.0

    @property
    def done(self) -> bool:
        return self.generated >= self.request.output_tokens

    @property
    def next_kv_length(self) -> int:
        """KV length of this request's next decode pass."""
        return self.request.input_tokens + self.generated


@dataclass(frozen=True)
class ServingMetrics:
    """Aggregate metrics of one simulated trace (plus per-request detail)."""

    backend: str
    model: str
    policy: str
    num_requests: int
    makespan_s: float
    busy_s: float
    utilization: float
    output_tokens: int
    tokens_per_s: float
    requests_per_s: float
    latency_mean_s: float
    latency_p50_s: float
    latency_p99_s: float
    ttft_mean_s: float
    ttft_p50_s: float
    ttft_p99_s: float
    tpot_mean_s: float
    energy_j: float
    flops: float
    prefill_passes: int
    decode_passes: int
    mean_decode_batch: float
    per_request: tuple[RequestMetrics, ...] = field(default_factory=tuple)

    def to_dict(self, include_requests: bool = True) -> dict:
        """JSON-stable representation (reports and determinism tests)."""
        data = {
            "backend": self.backend,
            "model": self.model,
            "policy": self.policy,
            "num_requests": self.num_requests,
            "makespan_s": self.makespan_s,
            "busy_s": self.busy_s,
            "utilization": self.utilization,
            "output_tokens": self.output_tokens,
            "tokens_per_s": self.tokens_per_s,
            "requests_per_s": self.requests_per_s,
            "latency_mean_s": self.latency_mean_s,
            "latency_p50_s": self.latency_p50_s,
            "latency_p99_s": self.latency_p99_s,
            "ttft_mean_s": self.ttft_mean_s,
            "ttft_p50_s": self.ttft_p50_s,
            "ttft_p99_s": self.ttft_p99_s,
            "tpot_mean_s": self.tpot_mean_s,
            "energy_j": self.energy_j,
            "flops": self.flops,
            "prefill_passes": self.prefill_passes,
            "decode_passes": self.decode_passes,
            "mean_decode_batch": self.mean_decode_batch,
        }
        if include_requests:
            data["per_request"] = [metrics.to_dict() for metrics in self.per_request]
        return data

    def summary(self) -> str:
        """Multi-line human-readable summary (``repro serve`` prints this)."""
        return "\n".join(
            [
                f"backend         : {self.backend}",
                f"model           : {self.model}",
                f"policy          : {self.policy}",
                f"requests        : {self.num_requests} "
                f"({self.output_tokens} output tokens)",
                f"makespan        : {self.makespan_s:.3f} s "
                f"(device busy {self.busy_s:.3f} s, {self.utilization:.0%} utilized)",
                f"throughput      : {self.tokens_per_s:.1f} tokens/s, "
                f"{self.requests_per_s:.2f} requests/s",
                f"latency         : mean {self.latency_mean_s * 1e3:.1f} ms, "
                f"p50 {self.latency_p50_s * 1e3:.1f} ms, "
                f"p99 {self.latency_p99_s * 1e3:.1f} ms",
                f"TTFT            : mean {self.ttft_mean_s * 1e3:.1f} ms, "
                f"p50 {self.ttft_p50_s * 1e3:.1f} ms, "
                f"p99 {self.ttft_p99_s * 1e3:.1f} ms",
                f"TPOT            : mean {self.tpot_mean_s * 1e3:.3f} ms/token",
                f"passes          : {self.prefill_passes} prefill, "
                f"{self.decode_passes} decode "
                f"(mean batch {self.mean_decode_batch:.2f})",
                f"dynamic energy  : {self.energy_j * 1e3:.1f} mJ",
            ]
        )


class ServingSimulator:
    """Single-device discrete-event serving simulator.

    Parameters
    ----------
    cost_model:
        Any :class:`~repro.core.costmodel.CostModel` backend.
    model:
        The served model; must be a decoder when any request generates more
        than one token.
    policy:
        ``"fcfs"``, ``"interleaved"``, or a :class:`ServingPolicy` instance.
    max_batch:
        Decode-batch cap of the interleaved policy.
    exact:
        Price every decode KV length exactly instead of interpolating over
        ``kv_samples`` anchors (see :class:`PassCostProvider`).
    batch_share:
        Fraction of the decode cost floor shared across a fused batch (see
        the module docstring); 1.0 models fully shared weight streaming.
    """

    def __init__(
        self,
        cost_model: CostModel,
        model: ModelConfig,
        policy: "ServingPolicy | str" = "interleaved",
        max_batch: int = 8,
        exact: bool = False,
        kv_samples: int = DEFAULT_KV_SAMPLES,
        batch_share: float = 1.0,
    ) -> None:
        if not 0.0 <= batch_share <= 1.0:
            raise ValueError("batch_share must be in [0, 1]")
        self.cost_model = cost_model
        self.model = model
        self.policy = make_policy(policy, max_batch) if isinstance(policy, str) else policy
        self.batch_share = batch_share
        self.provider = PassCostProvider(
            cost_model, model, exact=exact, kv_samples=kv_samples
        )

    # ------------------------------------------------------------------
    def simulate(self, requests: Sequence[Request]) -> ServingMetrics:
        """Play a trace to completion and return its metrics."""
        ordered = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        if not ordered:
            return self._finalize([], 0.0, 0.0, EnergyBreakdown.zero(), 0.0, 0, 0, 0)
        if not self.model.is_decoder and any(r.output_tokens > 1 for r in ordered):
            raise ValueError(
                f"{self.model.name} is not a decoder; serving traces for it "
                "must be summarization-only (output_tokens == 1)"
            )
        kv_bounds = _decode_kv_bounds(ordered)
        if kv_bounds is not None:
            self.provider.prepare(*kv_bounds)

        pending = deque(ordered)
        waiting: deque[Request] = deque()
        active: list[_InFlight] = []
        completed: list[RequestMetrics] = []
        clock = 0.0
        busy = 0.0
        energy = EnergyBreakdown.zero()
        flops = 0.0
        prefill_passes = 0
        decode_passes = 0
        decode_tokens = 0

        while pending or waiting or active:
            while pending and pending[0].arrival_s <= clock:
                waiting.append(pending.popleft())
            if not waiting and not active:
                clock = pending[0].arrival_s
                continue

            if waiting and self.policy.admit(len(active)):
                request = waiting.popleft()
                cost = self.provider.prefill(request.input_tokens)
                clock += cost.latency_s
                busy += cost.latency_s
                energy = energy + cost.energy
                flops += cost.flops
                prefill_passes += 1
                flight = _InFlight(request, generated=1, first_token_s=clock)
                if flight.done:
                    completed.append(self._completed(flight, clock))
                else:
                    active.append(flight)
                continue

            batch = self.policy.decode_batch(active)
            costs = [self.provider.decode(flight.next_kv_length) for flight in batch]
            latency, pass_energy, pass_flops = self._fused_decode(costs)
            clock += latency
            busy += latency
            energy = energy + pass_energy
            flops += pass_flops
            decode_passes += 1
            decode_tokens += len(batch)
            for flight in batch:
                flight.generated += 1
                if flight.done:
                    active.remove(flight)
                    completed.append(self._completed(flight, clock))

        completed.sort(key=lambda metrics: metrics.request_id)
        makespan = clock - ordered[0].arrival_s
        return self._finalize(
            completed, makespan, busy, energy, flops,
            prefill_passes, decode_passes, decode_tokens,
        )

    # ------------------------------------------------------------------
    def _completed(self, flight: _InFlight, completion_s: float) -> RequestMetrics:
        request = flight.request
        return RequestMetrics(
            request_id=request.request_id,
            arrival_s=request.arrival_s,
            first_token_s=flight.first_token_s,
            completion_s=completion_s,
            input_tokens=request.input_tokens,
            output_tokens=request.output_tokens,
        )

    def _fused_decode(
        self, costs: "list[PassCost]"
    ) -> "tuple[float, EnergyBreakdown, float]":
        """Latency, energy and FLOPs of one fused decode iteration."""
        if len(costs) == 1:
            only = costs[0]
            return only.latency_s, only.energy, only.flops
        base = self.provider.base()
        shared = self.batch_share * (len(costs) - 1)
        latency = sum(cost.latency_s for cost in costs) - shared * base.latency_s
        latency = max(latency, max(cost.latency_s for cost in costs))
        energy = EnergyBreakdown(
            normal_memory_j=self._shared_component(
                [c.energy.normal_memory_j for c in costs],
                shared * base.energy.normal_memory_j,
            ),
            pim_op_j=self._shared_component(
                [c.energy.pim_op_j for c in costs], shared * base.energy.pim_op_j
            ),
            npu_cores_j=self._shared_component(
                [c.energy.npu_cores_j for c in costs],
                shared * base.energy.npu_cores_j,
            ),
        )
        flops = sum(cost.flops for cost in costs)  # batching shares bytes, not math
        return latency, energy, flops

    @staticmethod
    def _shared_component(values: "list[float]", saved: float) -> float:
        return max(sum(values) - saved, max(values))

    def _finalize(
        self,
        completed: "list[RequestMetrics]",
        makespan: float,
        busy: float,
        energy: EnergyBreakdown,
        flops: float,
        prefill_passes: int,
        decode_passes: int,
        decode_tokens: int,
    ) -> ServingMetrics:
        latencies = [metrics.latency_s for metrics in completed]
        ttfts = [metrics.ttft_s for metrics in completed]
        tpots = [metrics.tpot_s for metrics in completed if metrics.output_tokens > 1]
        output_tokens = sum(metrics.output_tokens for metrics in completed)
        mean = lambda values: sum(values) / len(values) if values else 0.0  # noqa: E731
        return ServingMetrics(
            backend=self.cost_model.name,
            model=self.model.name,
            policy=self.policy.name,
            num_requests=len(completed),
            makespan_s=makespan,
            busy_s=busy,
            utilization=busy / makespan if makespan > 0 else 0.0,
            output_tokens=output_tokens,
            tokens_per_s=output_tokens / makespan if makespan > 0 else 0.0,
            requests_per_s=len(completed) / makespan if makespan > 0 else 0.0,
            latency_mean_s=mean(latencies),
            latency_p50_s=percentile(latencies, 50.0),
            latency_p99_s=percentile(latencies, 99.0),
            ttft_mean_s=mean(ttfts),
            ttft_p50_s=percentile(ttfts, 50.0),
            ttft_p99_s=percentile(ttfts, 99.0),
            tpot_mean_s=mean(tpots),
            energy_j=energy.total_j,
            flops=flops,
            prefill_passes=prefill_passes,
            decode_passes=decode_passes,
            mean_decode_batch=decode_tokens / decode_passes if decode_passes else 0.0,
            per_request=tuple(completed),
        )
