"""Discrete-event request-level serving simulator over the cost-model layer.

:class:`ServingSimulator` plays a trace of
:class:`~repro.serving.request.Request` objects against one device whose
per-pass costs come from any :class:`~repro.core.costmodel.CostModel` — the
IANUS simulator, the NPU-MEM variant, or the A100/DFX analytical baselines.
Time advances at *pass* granularity (one prefill pass or chunk, or one
fused decode iteration at a time), which is exactly the scheduling
granularity of iteration-level serving systems (Orca, vLLM): between any
two passes the scheduler may admit new arrivals or change the decode batch.

Memory-aware admission
----------------------
Admission is governed by the backend's *memory system*, not a head count: a
:class:`~repro.serving.kv_memory.KvPageAccountant` commits KV pages against
the bytes the backend holds beyond the model weights, scaled by
``kv_fraction``.  A request is admitted only when both the policy's
concurrency gate and the page pool agree; pages are released at completion.
Two admission modes are supported:

``admission="worst-case"`` (default)
    Each request commits its worst-case pages (its full ``input + output``
    tokens) up front.  Deadlock-free by construction and maximally
    conservative — the PR 4 behavior, bit-for-bit.
``admission="optimistic"``
    Each request commits only its *prompt* pages; every decode pass grows
    the reservation on demand as the KV cache crosses page boundaries
    (vLLM-style).  On pool exhaustion the scheduler preempts the active
    request with the least generated tokens (ties: least prefilled, then
    latest arrival), releases all its pages, and re-enqueues it for
    **recompute** from scratch; ``preempt=False`` disables preemption, in
    which case a decode that cannot grow simply stalls for the iteration
    (and the simulator raises if *nothing* can run).  Preemptions and the
    tokens they discard are reported as ``preemptions`` /
    ``recomputed_tokens``; optimism admits more concurrent requests
    (``peak_active``) in exchange for that wasted work.

Incremental runs
----------------
:meth:`ServingSimulator.begin` returns a :class:`SimulationRun` — the same
discrete-event loop exposed as ``offer`` / ``advance_until`` / ``finish``
steps, so a caller can interleave request injection with simulation time.
``simulate`` is the one-shot wrapper (offer everything, drain); the cluster
simulator (:mod:`repro.serving.cluster`) drives one run per replica and
routes each arrival using the replicas' states at that instant.  Offering a
trace incrementally at its arrival instants is *byte-identical* to the
one-shot path: admission happens at pass boundaries in both.

Chunked prefill
---------------
With ``chunk_tokens > 0`` a prompt is prefilled in scheduler-visible chunks
instead of one head-of-line-blocking pass.  Chunk ``i`` is priced at the
*incremental* cost ``C(prefix + chunk) - C(prefix)``
(:func:`~repro.core.costmodel.diff_pass_cost`), so chunk costs telescope to
the monolithic prefill cost — a chunk size >= the prompt is a byte-identical
no-op, and chunking conserves both tokens and total prefill work.  Each
chunk iteration is *fused* with one decode token for the policy's decode
batch (Sarathi-style piggybacking): the chunk already streams every FC
weight, so the decode members ride along paying only their KV-dependent
marginal, and decodes no longer starve behind long prompts.

Scheduling policies
-------------------
:class:`FcfsPolicy`
    Classic run-to-completion: requests are served one at a time in arrival
    order; an arrival behind a long generation waits for the whole request.
:class:`InterleavedPolicy`
    Continuous batching: up to ``max_batch`` requests are in flight; new
    arrivals are prefilled as soon as a slot (and KV pages) free up, and all
    in-flight requests advance one token per fused decode iteration.
:class:`SrptPolicy`
    Shortest-remaining-processing-time continuous batching: admission,
    prefill order and the decode batch all prefer the request with the
    fewest remaining tokens, which minimizes mean latency.
:class:`PriorityPolicy`
    Priority-class continuous batching: class 0 is admitted, prefilled and
    decoded before class 1, and so on; pair with per-class ``slo_targets``
    to measure SLO attainment under overload.

Batched-decode cost model
-------------------------
The cost layer prices *single-request* passes, so the simulator derives the
cost of a fused decode iteration from it explicitly.  Decode passes on every
evaluated backend are dominated by streaming the FC weights, which a batch
shares; the per-request remainder (KV-cache traffic, attention) is not
shared.  With ``c(kv)`` the single-request decode cost and ``base = c(1)``
(the weight-streaming plus fixed-overhead floor), a batch at KV lengths
``kv_1..kv_B`` is charged::

    latency = sum_i c(kv_i).latency - share * (B - 1) * base.latency

i.e. the shared floor is paid once and every request pays its KV-dependent
marginal, floored at the slowest member (a fused pass cannot beat its
largest request).  When a prefill chunk carries the iteration, the chunk
pays the weights and *all* ``B`` decode floors are shareable.  ``share``
(default 1.0) scales how much of the floor is shareable; ``share=0``
recovers fully serial decoding.  A batch of one is by construction
*exactly* the single-request pass cost, which is what makes a one-request
trace reproduce ``IanusSystem.run(mode="exact")`` latency.  Energy follows
the same sharing (shared weight reads are shared DRAM energy); FLOPs sum
fully — batching shares bytes, not math.

Pass-cost provider
------------------
:class:`PassCostProvider` fronts the cost model: prefill costs are always
priced exactly (few distinct prompt lengths per mix), decode costs either
exactly per KV length (``exact=True``) or by piecewise-linear interpolation
over ``kv_samples`` anchor lengths — the serving-level counterpart of the
fast generation mode of :meth:`repro.core.system.IanusSystem.run`, and the
reason a load sweep touches a handful of simulated passes instead of
thousands.  Every anchor evaluation routes through the backend's shared
(persistently cacheable) pass-cost cache.

Engines
-------
Two interchangeable implementations sit behind ``begin``/``simulate``
(:data:`ENGINES`, selected by ``ServingSimulator(engine=...)``):

``engine="object"`` (default)
    The reference discrete-event loop in this module — per-request
    ``_InFlight`` objects, a cost-provider call per pass.  Always correct,
    supports custom :class:`ServingPolicy` subclasses, comfortable up to
    tens of thousands of requests.
``engine="array"``
    The vectorized fast core (:mod:`repro.serving.array_engine`): columnar
    request state, decode costs from a dense per-(model, backend) lookup
    table (:mod:`repro.serving.decode_table`), and macro-stepping that
    prices whole runs of decode iterations from prefix sums.  Simulates a
    day of production traffic — a million requests — in seconds.  With
    ``record_events=True`` it takes the per-iteration path and reproduces
    the object engine's event log *bit for bit*; macro-stepped runs match
    pooled metrics to ~1e-9 (float accumulation order differs).  Requires
    a registered policy (the four in :data:`POLICIES`) because policy
    decisions are re-derived over columns.
"""

from __future__ import annotations

import bisect
import inspect
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterable, Sequence

from repro.core.costmodel import CostModel, PassCost, diff_pass_cost, lerp_pass_cost
from repro.energy.model import EnergyBreakdown
from repro.models.flops import model_weight_bytes
from repro.models.transformer import ModelConfig
from repro.models.workload import Stage, StagePass
from repro.serving.kv_memory import DEFAULT_PAGE_TOKENS, KvPageAccountant
from repro.serving.request import Request, RequestMetrics
from repro.serving.validate import SimEvent

__all__ = [
    "PassCostProvider",
    "ServingPolicy",
    "FcfsPolicy",
    "InterleavedPolicy",
    "SrptPolicy",
    "PriorityPolicy",
    "POLICIES",
    "make_policy",
    "ADMISSION_MODES",
    "ENGINES",
    "ServingMetrics",
    "SimulationRun",
    "ServingSimulator",
    "decode_kv_bounds",
    "mean_service_time_s",
    "percentile",
]

#: Admission-control modes of the simulator (see the module docstring).
ADMISSION_MODES = ("worst-case", "optimistic")

#: Simulation engines (see the module docstring): the reference
#: object-graph loop, and the vectorized array core behind the same API.
ENGINES = ("object", "array")

#: Default number of KV-length anchors of the interpolating provider.
DEFAULT_KV_SAMPLES = 9


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile with linear interpolation between ranks.

    Deterministic and dependency-free (no numpy): sort, place ``q`` on the
    ``(n - 1)``-step rank axis, interpolate between the two bracketing
    order statistics.
    """
    if not values:
        return 0.0
    return _percentile_sorted(sorted(values), q)


def _percentile_sorted(ordered: Sequence[float], q: float) -> float:
    """:func:`percentile` over an already-sorted sequence.

    Metric finalization computes several percentiles of the same value
    list; sorting once and interpolating many times is the fast path
    (:func:`percentile` used to re-sort per call).
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    if not ordered:
        return 0.0
    position = q / 100.0 * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    return ordered[lower] + weight * (ordered[upper] - ordered[lower])


# ----------------------------------------------------------------------
# Pass-cost provider
# ----------------------------------------------------------------------
class PassCostProvider:
    """Exact or KV-interpolating per-pass costing over one cost model."""

    def __init__(
        self,
        cost_model: CostModel,
        model: ModelConfig,
        exact: bool = False,
        kv_samples: int = DEFAULT_KV_SAMPLES,
    ) -> None:
        if kv_samples < 2:
            raise ValueError("kv_samples must be at least 2")
        self.cost_model = cost_model
        self.model = model
        self.exact = exact
        self.kv_samples = kv_samples
        self._prefill_costs: dict[int, PassCost] = {}
        #: Exactly-priced decode costs — valid forever, kept across prepare().
        self._exact_costs: dict[int, PassCost] = {}
        #: Interpolated decode costs — anchor-grid-dependent, cleared by
        #: prepare() so a reused provider never mixes two grids.
        self._interp_costs: dict[int, PassCost] = {}
        self._anchors: list[int] = []
        #: Dense decode tables keyed (kv_lo, kv_hi) — anchor-grid-dependent
        #: like _interp_costs, cleared by prepare() with it.
        self._tables: dict = {}

    # ------------------------------------------------------------------
    def prepare(self, kv_min: int, kv_max: int) -> None:
        """Choose the decode anchor grid for a known KV range.

        Anchors are evaluated lazily; ``prepare`` only fixes their
        positions.  KV length 1 is always an anchor — it is the shared
        ``base`` of the fused-decode cost model.  Interpolated costs from a
        previous grid are dropped, so reusing a provider (or simulator)
        across traces yields the same metrics as a fresh one.
        """
        if kv_max < kv_min:
            raise ValueError("kv_max must be at least kv_min")
        anchors = {1, kv_min, kv_max}
        if kv_max > kv_min:
            step = (kv_max - kv_min) / (self.kv_samples - 1)
            anchors.update(
                int(round(kv_min + i * step)) for i in range(self.kv_samples)
            )
        self._anchors = sorted(anchors)
        self._interp_costs.clear()
        self._tables.clear()

    def prefill(self, input_tokens: int) -> PassCost:
        """Cost of the summarization (prefill) pass — always exact."""
        cost = self._prefill_costs.get(input_tokens)
        if cost is None:
            cost = self.cost_model.pass_cost(
                self.model,
                StagePass(Stage.SUMMARIZATION, input_tokens, input_tokens),
            )
            self._prefill_costs[input_tokens] = cost
        return cost

    def prefill_chunk(self, prefix_tokens: int, chunk_tokens: int) -> PassCost:
        """Incremental cost of prefilling ``chunk_tokens`` after a prefix.

        Priced as ``C(prefix + chunk) - C(prefix)`` so a request's chunk
        costs telescope to its monolithic prefill cost exactly (and a chunk
        covering the whole prompt *is* the monolithic pass).
        """
        if chunk_tokens < 1:
            raise ValueError("chunk_tokens must be at least 1")
        if prefix_tokens < 0:
            raise ValueError("prefix_tokens must be non-negative")
        if prefix_tokens == 0:
            return self.prefill(chunk_tokens)
        return diff_pass_cost(
            self.prefill(prefix_tokens + chunk_tokens), self.prefill(prefix_tokens)
        )

    def decode(self, kv_length: int) -> PassCost:
        """Cost of one single-request decode pass at ``kv_length``."""
        cost = self._exact_costs.get(kv_length)
        if cost is not None:
            return cost
        if self.exact or kv_length in self._anchors or len(self._anchors) < 2:
            return self._decode_exact(kv_length)
        cost = self._interp_costs.get(kv_length)
        if cost is None:
            position = bisect.bisect_left(self._anchors, kv_length)
            position = min(max(position, 1), len(self._anchors) - 1)
            low, high = self._anchors[position - 1], self._anchors[position]
            weight = (kv_length - low) / (high - low)
            cost = lerp_pass_cost(
                self._decode_exact(low), self._decode_exact(high), weight
            )
            self._interp_costs[kv_length] = cost
        return cost

    def decode_table(self, kv_lo: int, kv_hi: int):
        """Dense ``kv -> cost`` table over ``[kv_lo, kv_hi]`` (array engine).

        Built once per (model, backend, anchor grid) — every entry is
        bit-identical to :meth:`decode` at that KV length, and the anchor
        evaluations it triggers route through the backend's shared
        (persistently cacheable) pass-cost cache.  Memoized until the next
        :meth:`prepare`; see :mod:`repro.serving.decode_table`.
        """
        key = (kv_lo, kv_hi)
        table = self._tables.get(key)
        if table is None:
            table = self._shared_table(kv_lo, kv_hi)
            self._tables[key] = table
        return table

    def _shared_table(self, kv_lo: int, kv_hi: int):
        """Fetch or build a table via the process-wide (optionally
        persistent) decode-table cache.

        The shared key is ``(backend fingerprint, model fingerprint, anchor
        grid, kv range)`` — everything the columns depend on *except* this
        provider's exact-cost overrides, so the shared path is skipped
        whenever a non-anchor KV length in range has been priced exactly
        (the override would make the table provider-history-dependent).
        When :func:`repro.perf.cache.install_disk_caches` is active the
        payload persists across processes, amortizing cold-start builds the
        same way pass costs already are.
        """
        from repro.perf.cache import config_fingerprint, global_decode_table_cache
        from repro.serving.decode_table import (
            build_decode_table,
            table_from_payload,
            table_to_payload,
        )

        backend_fp = getattr(self.cost_model, "config_fingerprint", None)
        if backend_fp is None:
            config = getattr(self.cost_model, "config", None)
            if config is not None:
                try:
                    backend_fp = config_fingerprint(config)
                except TypeError:
                    backend_fp = None
        anchors = tuple(self._anchors)
        anchor_set = set(anchors)
        overridden = any(
            kv_lo <= kv <= kv_hi and kv not in anchor_set
            for kv in self._exact_costs
        )
        if backend_fp is None or overridden:
            return build_decode_table(self, kv_lo, kv_hi)
        try:
            model_fp = config_fingerprint(self.model)
        except TypeError:
            return build_decode_table(self, kv_lo, kv_hi)
        shared = global_decode_table_cache()
        shared_key = (backend_fp, model_fp, anchors, kv_lo, kv_hi)
        payload = shared.get(shared_key)
        if payload is not None:
            table = table_from_payload(payload)
            if table is not None:
                return table
        table = build_decode_table(self, kv_lo, kv_hi)
        shared.put(shared_key, table_to_payload(table))
        return table

    def base(self) -> PassCost:
        """The KV-independent decode floor (``c(1)``): weights + overheads."""
        return self._decode_exact(1)

    def _decode_exact(self, kv_length: int) -> PassCost:
        cost = self._exact_costs.get(kv_length)
        if cost is None:
            cost = self.cost_model.pass_cost(
                self.model, StagePass(Stage.GENERATION, 1, kv_length)
            )
            self._exact_costs[kv_length] = cost
        return cost


def _decode_kv_bounds(items) -> "tuple[int, int] | None":
    """(min, max) decode KV length over requests or workloads, or ``None``.

    A request's decode passes span KV lengths ``input+1 .. input+output-1``
    (the prefill produces the first output token); items generating a single
    token contribute no decode pass.  Works on anything exposing
    ``input_tokens``/``output_tokens`` (:class:`~repro.serving.request.Request`,
    :class:`~repro.models.workload.Workload`).
    """
    bounds = [
        bound
        for item in items
        if item.output_tokens > 1
        for bound in (
            item.input_tokens + 1,
            item.input_tokens + item.output_tokens - 1,
        )
    ]
    if not bounds:
        return None
    return min(bounds), max(bounds)


def decode_kv_bounds(items) -> "tuple[int, int] | None":
    """Public form of :func:`_decode_kv_bounds`.

    Streaming callers cannot derive bounds from a trace they have not
    materialized; pass the generator's *workloads* here instead (the mix
    bounds cover every request drawn from it) and hand the result to
    :meth:`ServingSimulator.simulate_stream` or
    :meth:`ServingSimulator.begin`.
    """
    return _decode_kv_bounds(items)


def mean_service_time_s(
    cost_model: CostModel,
    model: ModelConfig,
    workloads: "Sequence",
    exact: bool = False,
    kv_samples: int = DEFAULT_KV_SAMPLES,
) -> float:
    """Mean run-to-completion service time of a workload mix (uniform weights).

    The reciprocal is the backend's nominal capacity in requests/s — the
    arrival rate at which an ideal, never-idle FCFS server would be exactly
    saturated.  Load sweeps use it to express offered load as a fraction of
    each backend's capacity, so curves are comparable across backends whose
    absolute speeds differ by an order of magnitude.
    """
    if not workloads:
        raise ValueError("workloads must be non-empty")
    provider = PassCostProvider(cost_model, model, exact=exact, kv_samples=kv_samples)
    kv_bounds = _decode_kv_bounds(workloads)
    if kv_bounds is not None:
        provider.prepare(*kv_bounds)
    total = 0.0
    for workload in workloads:
        service = provider.prefill(workload.input_tokens).latency_s
        for kv in range(
            workload.input_tokens + 1,
            workload.input_tokens + workload.output_tokens,
        ):
            service += provider.decode(kv).latency_s
        total += service
    return total / len(workloads)


# ----------------------------------------------------------------------
# Scheduling policies
# ----------------------------------------------------------------------
@dataclass
class _InFlight:
    """Mutable in-flight request state (internal to the simulator)."""

    request: Request
    prefilled: int = 0
    generated: int = 0
    first_token_s: float = 0.0

    @property
    def prefill_done(self) -> bool:
        return self.prefilled >= self.request.input_tokens

    @property
    def done(self) -> bool:
        return self.prefill_done and self.generated >= self.request.output_tokens

    @property
    def next_kv_length(self) -> int:
        """KV length of this request's next decode pass."""
        return self.request.input_tokens + self.generated

    @property
    def remaining_tokens(self) -> int:
        """Prompt tokens still to prefill plus output tokens still to emit."""
        return (self.request.input_tokens - self.prefilled) + (
            self.request.output_tokens - self.generated
        )


class ServingPolicy:
    """Decides what the device executes between two passes.

    ``admit`` gates concurrency (the KV page pool independently gates
    memory); ``admit_index`` picks which waiting request is admitted next;
    ``prefill_index`` picks which admitted-but-unprefilled request runs its
    next chunk; ``decode_batch`` picks the fully-prefilled requests that
    advance one token in the next decode iteration.  The base class admits
    and prefills in arrival order.
    """

    name = "policy"

    def admit(self, active_count: int) -> bool:
        raise NotImplementedError

    def admit_index(self, waiting: "Sequence[Request]") -> int:
        return 0

    def admit_filter(
        self, waiting: "Sequence[Request]", active: "Sequence[_InFlight]"
    ) -> "list[int] | None":
        """Indices of ``waiting`` that are admissible *right now*, or
        ``None`` to leave admission ungated (the default).

        Called after the concurrency gate with the current active set;
        returning ``[]`` stops admission for this pass boundary.
        Implementations must keep admission live: when ``active`` is
        empty the filter must not be empty while work waits, or the
        device would idle forever.
        """
        return None

    def prefill_index(self, prefilling: "Sequence[_InFlight]") -> int:
        return 0

    def decode_batch(self, decodable: "Sequence[_InFlight]") -> "list[_InFlight]":
        raise NotImplementedError


class FcfsPolicy(ServingPolicy):
    """First-come-first-served, run-to-completion, one request at a time."""

    name = "fcfs"

    def admit(self, active_count: int) -> bool:
        return active_count == 0

    def decode_batch(self, decodable):
        return list(decodable[:1])


class _BatchedPolicy(ServingPolicy):
    """Shared concurrency gate of the continuous-batching policies."""

    def __init__(self, max_batch: int = 8) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        self.max_batch = max_batch

    def admit(self, active_count: int) -> bool:
        return active_count < self.max_batch


class InterleavedPolicy(_BatchedPolicy):
    """Iteration-level continuous batching with prefill priority."""

    name = "interleaved"

    def decode_batch(self, decodable):
        return list(decodable[: self.max_batch])


class SrptPolicy(_BatchedPolicy):
    """Shortest-remaining-processing-time continuous batching.

    Admission, prefill order and the decode batch all prefer the request
    with the fewest remaining tokens (ties broken by queue position, so the
    order is deterministic).  Remaining tokens are the service-demand proxy
    the cost models support: every token costs roughly one pass slot.
    """

    name = "srpt"

    def admit_index(self, waiting):
        return min(
            range(len(waiting)), key=lambda i: (waiting[i].total_tokens, i)
        )

    def prefill_index(self, prefilling):
        return min(
            range(len(prefilling)),
            key=lambda i: (prefilling[i].remaining_tokens, i),
        )

    def decode_batch(self, decodable):
        order = sorted(
            range(len(decodable)),
            key=lambda i: (decodable[i].remaining_tokens, i),
        )
        return [decodable[i] for i in order[: self.max_batch]]


class PriorityPolicy(_BatchedPolicy):
    """Priority-class continuous batching (class 0 first, then arrival order).

    Strict priority at every decision point: admission, prefill order and
    the decode batch serve the lowest class first.  Pair with the
    simulator's per-class ``slo_targets`` to measure SLO attainment — under
    overload, class 0 keeps its attainment at the expense of class 1.

    ``class_shares`` adds per-class *admission reservations* for tenant
    isolation: class ``i`` is guaranteed ``floor(class_shares[i] *
    max_batch)`` concurrency slots.  A candidate of class ``c`` is admitted
    while class ``c`` is under its reservation, or while enough headroom
    remains that admitting it cannot eat into another waiting class's
    unfilled reservation.  With shares, an overloaded low-priority tenant
    can no longer starve class 0 of admission slots *and* a burst of
    class-0 work cannot squeeze a reserved lower class out entirely.
    Classes beyond ``len(class_shares)`` hold no reservation.  Without
    ``class_shares`` (default) admission is the legacy strict-priority
    order, bit for bit.
    """

    name = "priority"

    def __init__(
        self, max_batch: int = 8, class_shares: "Sequence[float] | None" = None
    ) -> None:
        super().__init__(max_batch)
        self.class_shares: "tuple[float, ...] | None" = None
        self._reservations: "tuple[int, ...] | None" = None
        if class_shares is not None:
            shares = tuple(float(share) for share in class_shares)
            if not shares:
                raise ValueError("class_shares must name at least one class")
            if any(
                not 0.0 <= share <= 1.0 or share != share for share in shares
            ):
                raise ValueError("class_shares must be fractions in [0, 1]")
            if sum(shares) > 1.0 + 1e-9:
                raise ValueError(
                    f"class_shares sum to {sum(shares):g}; reservations "
                    "cannot exceed the whole batch (sum must be <= 1)"
                )
            self.class_shares = shares
            self._reservations = tuple(
                int(share * self.max_batch) for share in shares
            )

    def admit_index(self, waiting):
        return min(
            range(len(waiting)), key=lambda i: (waiting[i].priority_class, i)
        )

    def admit_filter(self, waiting, active):
        if self._reservations is None:
            return None
        reserved = self._reservations
        active_by_class: "dict[int, int]" = {}
        for flight in active:
            cls = flight.request.priority_class
            active_by_class[cls] = active_by_class.get(cls, 0) + 1
        waiting_classes = {request.priority_class for request in waiting}
        total = len(active)
        allowed: "list[int]" = []
        for index, request in enumerate(waiting):
            cls = request.priority_class
            quota = reserved[cls] if cls < len(reserved) else 0
            if active_by_class.get(cls, 0) < quota:
                allowed.append(index)
                continue
            # Slots other waiting classes still have reserved but unfilled:
            # admitting past them could eat a guaranteed slot.
            pending = sum(
                max(
                    0,
                    (reserved[other] if other < len(reserved) else 0)
                    - active_by_class.get(other, 0),
                )
                for other in waiting_classes
                if other != cls
            )
            if total + pending < self.max_batch:
                allowed.append(index)
        return allowed

    def prefill_index(self, prefilling):
        return min(
            range(len(prefilling)),
            key=lambda i: (prefilling[i].request.priority_class, i),
        )

    def decode_batch(self, decodable):
        order = sorted(
            range(len(decodable)),
            key=lambda i: (decodable[i].request.priority_class, i),
        )
        return [decodable[i] for i in order[: self.max_batch]]


#: Policy registry: CLI/experiment name -> class, in presentation order.
POLICIES: dict[str, type[ServingPolicy]] = {
    "fcfs": FcfsPolicy,
    "interleaved": InterleavedPolicy,
    "srpt": SrptPolicy,
    "priority": PriorityPolicy,
}


def _constructor_keywords(cls: type) -> set[str]:
    """Keyword arguments a class constructor accepts (shared by the policy
    and router factories, so both validate the same way)."""
    return {
        name
        for name, param in inspect.signature(cls.__init__).parameters.items()
        if name != "self"
        and param.kind in (param.POSITIONAL_OR_KEYWORD, param.KEYWORD_ONLY)
    }


def _validated_construct(kind: str, registry: dict, name: str, kwargs: dict):
    """Look up ``name`` in ``registry`` and build it, validating kwargs.

    Unknown names raise with the list of known entries; keyword arguments
    the named class does not accept raise instead of being silently
    dropped.  The single construction path of policies and routers.
    """
    cls = registry.get(name)
    if cls is None:
        raise ValueError(f"unknown {kind} {name!r}; known: {', '.join(registry)}")
    allowed = _constructor_keywords(cls)
    unexpected = sorted(set(kwargs) - allowed)
    if unexpected:
        accepted = ", ".join(sorted(allowed)) if allowed else "none"
        raise ValueError(
            f"{kind} {name!r} does not accept {', '.join(unexpected)} "
            f"(accepted keyword(s): {accepted})"
        )
    return cls(**kwargs)


def make_policy(name: str, **kwargs) -> ServingPolicy:
    """Instantiate a scheduling policy by name — the single validation point.

    Unknown names raise with the list of known policies; keyword arguments
    the named policy does not accept raise instead of being silently
    dropped (e.g. ``max_batch`` on FCFS, which is unbatched by definition).
    """
    return _validated_construct("policy", POLICIES, name, kwargs)


# ----------------------------------------------------------------------
# Simulator
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ServingMetrics:
    """Aggregate metrics of one simulated trace (plus per-request detail)."""

    backend: str
    model: str
    policy: str
    num_requests: int
    makespan_s: float
    busy_s: float
    utilization: float
    output_tokens: int
    tokens_per_s: float
    requests_per_s: float
    latency_mean_s: float
    latency_p50_s: float
    latency_p99_s: float
    ttft_mean_s: float
    ttft_p50_s: float
    ttft_p99_s: float
    tpot_mean_s: float
    energy_j: float
    flops: float
    prefill_passes: int
    decode_passes: int
    mean_decode_batch: float
    #: Admission mode of the run ("worst-case" or "optimistic").
    admission: str = "worst-case"
    #: Total admit decisions (> num_requests when preemption re-admits).
    admissions: int = 0
    #: High-water mark of concurrently admitted requests.
    peak_active: int = 0
    #: Preempt-and-recompute evictions performed by optimistic admission.
    preemptions: int = 0
    #: Prompt + output tokens computed then discarded by preemptions.
    recomputed_tokens: int = 0
    #: Victims whose KV pages were swapped out to host DRAM (swap tier).
    swap_outs: int = 0
    #: Swapped-out requests restored to the pool (no recompute).
    swap_ins: int = 0
    #: KV pages moved over the host link, both directions summed.
    swapped_pages: int = 0
    #: Host-link bandwidth priced for swap transfers (0 = swap disabled).
    link_gbps: float = 0.0
    chunk_tokens: int = 0
    kv_page_tokens: int = DEFAULT_PAGE_TOKENS
    kv_pages_total: int = 0
    kv_peak_pages: int = 0
    kv_budget_bytes: int = 0
    slo_attainment: "float | None" = None
    slo_by_class: dict = field(default_factory=dict)
    #: Names of the co-hosted model set; empty for single-model runs (the
    #: pre-multi-model representation is preserved byte for byte).
    models: tuple = ()
    #: Weight swaps paid when the active model changed mid-run.
    model_swaps: int = 0
    #: Simulated seconds spent streaming model weights over the host link.
    model_swap_s: float = 0.0
    #: Per-(model, class) SLO attainment, keyed ``"model/class"`` —
    #: populated only for multi-model runs with SLO targets.
    slo_by_model_class: dict = field(default_factory=dict)
    per_request: tuple[RequestMetrics, ...] = field(default_factory=tuple)

    def to_dict(self, include_requests: bool = True) -> dict:
        """JSON-stable representation (reports and determinism tests)."""
        data = {
            "backend": self.backend,
            "model": self.model,
            "policy": self.policy,
            "num_requests": self.num_requests,
            "makespan_s": self.makespan_s,
            "busy_s": self.busy_s,
            "utilization": self.utilization,
            "output_tokens": self.output_tokens,
            "tokens_per_s": self.tokens_per_s,
            "requests_per_s": self.requests_per_s,
            "latency_mean_s": self.latency_mean_s,
            "latency_p50_s": self.latency_p50_s,
            "latency_p99_s": self.latency_p99_s,
            "ttft_mean_s": self.ttft_mean_s,
            "ttft_p50_s": self.ttft_p50_s,
            "ttft_p99_s": self.ttft_p99_s,
            "tpot_mean_s": self.tpot_mean_s,
            "energy_j": self.energy_j,
            "flops": self.flops,
            "prefill_passes": self.prefill_passes,
            "decode_passes": self.decode_passes,
            "mean_decode_batch": self.mean_decode_batch,
            "admission": self.admission,
            "admissions": self.admissions,
            "peak_active": self.peak_active,
            "preemptions": self.preemptions,
            "recomputed_tokens": self.recomputed_tokens,
            "swap_outs": self.swap_outs,
            "swap_ins": self.swap_ins,
            "swapped_pages": self.swapped_pages,
            "link_gbps": self.link_gbps,
            "chunk_tokens": self.chunk_tokens,
            "kv_page_tokens": self.kv_page_tokens,
            "kv_pages_total": self.kv_pages_total,
            "kv_peak_pages": self.kv_peak_pages,
            "kv_budget_bytes": self.kv_budget_bytes,
            "slo_attainment": self.slo_attainment,
            "slo_by_class": self.slo_by_class,
        }
        if len(self.models) > 1:
            # Multi-model keys appear only for real model sets, so a
            # single-model run's dict matches the pre-multi-model layout.
            data["models"] = list(self.models)
            data["model_swaps"] = self.model_swaps
            data["model_swap_s"] = self.model_swap_s
            data["slo_by_model_class"] = self.slo_by_model_class
        if include_requests:
            data["per_request"] = [metrics.to_dict() for metrics in self.per_request]
        return data

    @property
    def kv_peak_fraction(self) -> float:
        """Peak committed fraction of the KV page pool."""
        if self.kv_pages_total <= 0:
            return 0.0
        return self.kv_peak_pages / self.kv_pages_total

    def summary(self) -> str:
        """Multi-line human-readable summary (``repro serve`` prints this)."""
        lines = [
            f"backend         : {self.backend}",
            f"model           : {self.model}",
            f"policy          : {self.policy}"
            + (f" (chunked prefill, {self.chunk_tokens} tokens)"
               if self.chunk_tokens else ""),
            f"requests        : {self.num_requests} "
            f"({self.output_tokens} output tokens)",
            f"makespan        : {self.makespan_s:.3f} s "
            f"(device busy {self.busy_s:.3f} s, {self.utilization:.0%} utilized)",
            f"throughput      : {self.tokens_per_s:.1f} tokens/s, "
            f"{self.requests_per_s:.2f} requests/s",
            f"latency         : mean {self.latency_mean_s * 1e3:.1f} ms, "
            f"p50 {self.latency_p50_s * 1e3:.1f} ms, "
            f"p99 {self.latency_p99_s * 1e3:.1f} ms",
            f"TTFT            : mean {self.ttft_mean_s * 1e3:.1f} ms, "
            f"p50 {self.ttft_p50_s * 1e3:.1f} ms, "
            f"p99 {self.ttft_p99_s * 1e3:.1f} ms",
            f"TPOT            : mean {self.tpot_mean_s * 1e3:.3f} ms/token",
            f"passes          : {self.prefill_passes} prefill, "
            f"{self.decode_passes} decode "
            f"(mean batch {self.mean_decode_batch:.2f})",
            f"admission       : {self.admission} "
            f"({self.admissions} admits, peak {self.peak_active} in flight, "
            f"{self.preemptions} preemptions, "
            f"{self.recomputed_tokens} tokens recomputed)",
            *(
                [
                    f"KV swap         : {self.swap_outs} out / {self.swap_ins} in, "
                    f"{self.swapped_pages} pages over a "
                    f"{self.link_gbps:g} Gb/s host link"
                ]
                if self.link_gbps > 0.0
                else []
            ),
            *(
                [
                    f"model set       : {', '.join(self.models)} "
                    f"({self.model_swaps} weight swaps, "
                    f"{self.model_swap_s:.3f} s streaming)"
                ]
                if len(self.models) > 1
                else []
            ),
            f"KV memory       : {self.kv_peak_pages}/{self.kv_pages_total} "
            f"pages peak ({self.kv_peak_fraction:.0%} of "
            f"{self.kv_budget_bytes / 2**30:.2f} GiB, "
            f"{self.kv_page_tokens} tokens/page)",
            f"dynamic energy  : {self.energy_j * 1e3:.1f} mJ",
        ]
        if self.slo_attainment is not None:
            by_class = ", ".join(
                f"class {cls}: {attained:.0%}"
                for cls, attained in self.slo_by_class.items()
            )
            lines.append(
                f"SLO attainment  : {self.slo_attainment:.0%}"
                + (f" ({by_class})" if by_class else "")
            )
        return "\n".join(lines)


class SimulationRun:
    """One in-progress simulation over a :class:`ServingSimulator`.

    Created by :meth:`ServingSimulator.begin`.  The one-shot
    :meth:`ServingSimulator.simulate` offers the whole (sorted) trace and
    drains; the cluster layer instead drives one run per replica — it
    advances every replica to a request's arrival instant
    (:meth:`advance_until`), reads the replicas' router-visible state, and
    :meth:`offer`\\ s the request to the chosen one.  Offering a trace
    incrementally at its arrival instants produces the *same* event log and
    metrics as the one-shot path, because the scheduler only acts at pass
    boundaries in both cases.

    The run owns all mutable state (queues, clock, KV accountant, event
    log, counters); the simulator it was created from supplies the
    immutable configuration (policy, provider, admission mode).
    """

    def __init__(
        self,
        sim: "ServingSimulator",
        record_events: bool = False,
        kv_bounds: "tuple[int, int] | None" = None,
    ) -> None:
        self.sim = sim
        self.kv = sim._new_accountant()
        self.events: "list[SimEvent] | None" = [] if record_events else None
        if kv_bounds is not None:
            for provider in sim.providers.values():
                provider.prepare(*kv_bounds)
        #: Model whose weights are resident on the device right now.
        self.resident_model = sim.model.name
        self._provider = sim.provider
        self.model_swaps = 0
        self.model_swap_s = 0.0
        self.pending: "deque[Request]" = deque()
        self.waiting: list[Request] = []
        self.active: list[_InFlight] = []
        #: Swapped-out requests, oldest first; their private KV pages live
        #: in host DRAM and their progress is preserved until swap-in.
        self.swapped: list[_InFlight] = []
        self.completed: list[RequestMetrics] = []
        self.clock = 0.0
        self.busy = 0.0
        self.energy = EnergyBreakdown.zero()
        self.flops = 0.0
        self.prefill_passes = 0
        self.decode_passes = 0
        self.decode_tokens = 0
        self.admissions = 0
        self.peak_active = 0
        self.preemptions = 0
        self.recomputed_tokens = 0
        self.swap_outs = 0
        self.swap_ins = 0
        self.swapped_pages_total = 0
        self.offered = 0
        self.first_arrival: "float | None" = None
        self.finished = False
        #: Set by :meth:`fail` — a dead replica takes no work until recovery.
        self.dead = False
        self._last_until: "float | None" = None
        #: Wall-time per simulator phase, populated when ``sim.profile``.
        self.phase_s: dict[str, float] = {
            "admit": 0.0,
            "prefill": 0.0,
            "decode": 0.0,
            "metrics": 0.0,
        }
        self._step_kind = "decode"

    # ------------------------------------------------------------------
    def offer(self, request: Request) -> None:
        """Inject one request; offers must come in ``(arrival, id)`` order."""
        if self.finished:
            raise ValueError("cannot offer a request to a finished run")
        if self.dead:
            raise ValueError("cannot offer a request to a failed replica")
        config = self.sim._config_for(request)
        if not config.is_decoder and request.output_tokens > 1:
            raise ValueError(
                f"{config.name} is not a decoder; serving traces for it "
                "must be summarization-only (output_tokens == 1)"
            )
        if self.pending:
            last = self.pending[-1]
            if (request.arrival_s, request.request_id) < (
                last.arrival_s,
                last.request_id,
            ):
                raise ValueError(
                    "requests must be offered in (arrival_s, request_id) order"
                )
        self.pending.append(request)
        self.offered += 1
        if self.first_arrival is None:
            self.first_arrival = request.arrival_s

    def offer_many(self, requests) -> None:
        """Offer a batch of requests in ``(arrival, id)`` order.

        Semantically a loop over :meth:`offer`; the array engine overrides
        this with a bulk path that hoists the guards out of the loop.
        """
        for request in requests:
            self.offer(request)

    # ------------------------------------------------------------------
    # Router-visible state (read by the cluster layer between offers)
    # ------------------------------------------------------------------
    @property
    def outstanding_requests(self) -> int:
        """Requests routed here and not yet completed."""
        return (
            len(self.pending)
            + len(self.waiting)
            + len(self.active)
            + len(self.swapped)
        )

    @property
    def outstanding_tokens(self) -> int:
        """Prompt + output tokens not yet computed across live requests."""
        tokens = sum(request.total_tokens for request in self.pending)
        tokens += sum(request.total_tokens for request in self.waiting)
        tokens += sum(flight.remaining_tokens for flight in self.active)
        tokens += sum(flight.remaining_tokens for flight in self.swapped)
        return tokens

    # ------------------------------------------------------------------
    def advance_until(self, until: "float | None") -> None:
        """Run every pass *starting* before ``until`` (all work if ``None``).

        A pass that starts before ``until`` may end after it — exactly as
        in the one-shot loop, where arrivals during a pass wait for the
        next pass boundary.  Idle clock jumps stop at the last arrival
        ``<= until``, so the run never invents knowledge of the future.

        Targets must not move backwards: simulated time only advances, so
        a caller handing a smaller ``until`` than its previous one holds a
        stale clock and gets a ``ValueError`` rather than a silent no-op.
        """
        if self.finished:
            raise ValueError("cannot advance a finished run")
        if until is not None:
            if self._last_until is not None and until < self._last_until:
                raise ValueError(
                    f"advance_until moved backwards: target {until:.6f}s is "
                    f"before the previous target {self._last_until:.6f}s"
                )
            self._last_until = until
        while True:
            while self.pending and self.pending[0].arrival_s <= self.clock:
                self.waiting.append(self.pending.popleft())
            if not self.waiting and not self.active and not self.swapped:
                if self.pending and (
                    until is None or self.pending[0].arrival_s <= until
                ):
                    self.clock = self.pending[0].arrival_s
                    self._emit("idle")
                    continue
                return
            if until is not None and self.clock >= until:
                return
            if self.sim.profile:
                start = perf_counter()
                self._admit()
                self.phase_s["admit"] += perf_counter() - start
            else:
                self._admit()
            if not self.active:
                raise RuntimeError(
                    f"policy {self.sim.policy.name!r} left the device idle with "
                    f"{len(self.waiting)} admissible request(s) waiting"
                )  # pragma: no cover - defensive, no shipped policy does this
            if self.sim.profile:
                start = perf_counter()
                self._step()
                self.phase_s[self._step_kind] += perf_counter() - start
            else:
                self._step()

    def finish(self) -> ServingMetrics:
        """Drain all remaining work and return the run's metrics."""
        if self.finished:
            raise ValueError("finish() called twice on the same run")
        self.advance_until(None)
        self.finished = True
        self.completed.sort(key=lambda metrics: metrics.request_id)
        makespan = (
            self.clock - self.first_arrival if self.first_arrival is not None else 0.0
        )
        if self.sim.profile:
            start = perf_counter()
            metrics = self.sim._finalize(self, makespan)
            self.phase_s["metrics"] += perf_counter() - start
            return metrics
        return self.sim._finalize(self, makespan)

    # ------------------------------------------------------------------
    def _emit(
        self,
        kind: str,
        latency: float = 0.0,
        request_id: "int | None" = None,
        tokens: int = 0,
        decode_ids: tuple = (),
        model: str = "",
    ) -> None:
        if self.events is not None:
            self.events.append(
                SimEvent(
                    kind=kind,
                    clock_s=self.clock,
                    latency_s=latency,
                    request_id=request_id,
                    tokens=tokens,
                    decode_ids=decode_ids,
                    active=len(self.active),
                    waiting=len(self.waiting),
                    kv_reserved_pages=self.kv.reserved_pages,
                    kv_total_pages=self.kv.total_pages,
                    model=model,
                )
            )

    def _admit(self) -> None:
        # Admission is instantaneous: commit KV pages and make the
        # request scheduler-visible.  Both gates must agree — the
        # policy's concurrency cap and the page pool.  Swapped-out
        # requests come back first (they hold completed work a recompute
        # would repay), then new admissions in the policy's order.
        self._swap_in_ready()
        self._admit_waiting()
        # The device may be idle with the pool pinned: every active slot
        # empty, yet swapped requests cannot return because resident
        # shared-prefix pages (theirs or their peers') crowd the pool.
        # Sacrifice the youngest swapped request for recompute until the
        # oldest fits again — each round shrinks the swap set, and a lone
        # swapped request always fits (fits_alone held at admission).
        while (
            not self.active
            and self.swapped
            and self.sim.policy.admit(len(self.active))
        ):
            if self.kv.can_swap_in(self.swapped[0].request.request_id):
                self._swap_in_head()
            else:
                self._preempt_swapped(len(self.swapped) - 1)
            self._admit_waiting()

    def _swap_in_ready(self) -> None:
        """Restore swapped-out requests, oldest first, while they fit."""
        sim, kv = self.sim, self.kv
        while self.swapped and sim.policy.admit(len(self.active)):
            if not kv.can_swap_in(self.swapped[0].request.request_id):
                break
            self._swap_in_head()

    def _swap_in_head(self) -> None:
        """Pay the link transfer and re-activate the oldest swapped request."""
        flight = self.swapped.pop(0)
        request_id = flight.request.request_id
        pages = self.kv.swap_in(request_id)
        latency = self._swap_latency(pages)
        self.clock += latency
        self.busy += latency
        self.active.append(flight)
        self.swap_ins += 1
        self.swapped_pages_total += pages
        if len(self.active) > self.peak_active:
            self.peak_active = len(self.active)
        self._emit("swap_in", latency=latency, request_id=request_id, tokens=pages)

    def _admit_waiting(self) -> None:
        # KV blocking is head-of-line on the policy's own admission order
        # (no smaller-request bypass), which keeps admission
        # starvation-free under every policy.  Worst-case mode commits the
        # full input + output tokens; optimistic mode commits the prompt
        # only and grows during decode (_grow_batch).  Requests with a
        # shared prefix charge only their unique new pages.
        sim, kv = self.sim, self.kv
        while self.waiting and sim.policy.admit(len(self.active)):
            allowed = sim.policy.admit_filter(self.waiting, self.active)
            if allowed is None:
                index = sim.policy.admit_index(self.waiting)
            else:
                if not allowed:
                    break
                subset = [self.waiting[i] for i in allowed]
                index = allowed[sim.policy.admit_index(subset)]
            request = self.waiting[index]
            if not kv.fits_alone(request.total_tokens):
                raise ValueError(
                    f"request {request.request_id} needs "
                    f"{kv.pages_for(request.total_tokens)} KV pages but the "
                    f"pool holds {kv.total_pages}; it can never be served "
                    f"(raise kv_fraction or the budget)"
                )
            commit_tokens = (
                request.input_tokens
                if sim.admission == "optimistic"
                else request.total_tokens
            )
            if not kv.can_reserve(
                commit_tokens, request.prefix_id, request.prefix_tokens
            ):
                break
            pages = kv.reserve(
                request.request_id,
                commit_tokens,
                request.prefix_id,
                request.prefix_tokens,
            )
            self.waiting.pop(index)
            self.active.append(_InFlight(request))
            self.admissions += 1
            if len(self.active) > self.peak_active:
                self.peak_active = len(self.active)
            self._emit("admit", request_id=request.request_id, tokens=pages)

    def _model_of(self, request: Request) -> str:
        """The model a request runs on ("" in a request means the default)."""
        return request.model or self.sim.model.name

    def _sync_model(self) -> None:
        """Swap weights when no resident-model work is runnable.

        Sticky-resident scheduling: while *any* active request uses the
        resident model the iteration is restricted to that model and no
        swap is paid.  Only when the resident model has nothing runnable
        does the replica stream in the weights of the policy's preferred
        next request (prefill-first, mirroring :meth:`_step`'s structure).
        """
        sim = self.sim
        resident = self.resident_model
        if any(self._model_of(f.request) == resident for f in self.active):
            return
        prefilling = [f for f in self.active if not f.prefill_done]
        if prefilling:
            target = prefilling[sim.policy.prefill_index(prefilling)]
        else:
            decodable = [f for f in self.active if f.prefill_done]
            batch = sim.policy.decode_batch(decodable)
            target = batch[0] if batch else decodable[0]
        self._swap_model(self._model_of(target.request))

    def _swap_model(self, target: str) -> None:
        """Stream ``target``'s weights in over the host link (weight swap)."""
        sim = self.sim
        moved = sim._weight_bytes[target]
        latency = moved * 8.0 / (sim.link_gbps * 1e9)
        self.clock += latency
        self.busy += latency
        self.resident_model = target
        self._provider = sim.providers[target]
        self.model_swaps += 1
        self.model_swap_s += latency
        self._emit("model_swap", latency=latency, tokens=moved, model=target)

    def _step(self) -> None:
        """One device iteration: a prefill chunk and/or a fused decode batch."""
        sim = self.sim
        eligible = self.active
        if sim.multi_model:
            self._sync_model()
            eligible = [
                flight
                for flight in self.active
                if self._model_of(flight.request) == self.resident_model
            ]
        prefilling = [flight for flight in eligible if not flight.prefill_done]
        decodable = [flight for flight in eligible if flight.prefill_done]
        flight: "_InFlight | None" = None
        carrier: "PassCost | None" = None
        chunk = 0
        batch: list[_InFlight] = []
        if prefilling:
            flight = prefilling[sim.policy.prefill_index(prefilling)]
            remaining = flight.request.input_tokens - flight.prefilled
            chunk = (
                remaining
                if sim.chunk_tokens == 0
                else min(sim.chunk_tokens, remaining)
            )
            carrier = self._provider.prefill_chunk(flight.prefilled, chunk)
            # A chunked iteration piggybacks one decode token per batch
            # member on the chunk's weight streaming (Sarathi-style);
            # monolithic prefills keep the pass pure.
            if sim.chunk_tokens and decodable:
                batch = sim.policy.decode_batch(decodable)
        else:
            batch = sim.policy.decode_batch(decodable)

        if sim.admission == "optimistic" and batch:
            requested = batch
            batch = self._grow_batch(batch, flight)
            if carrier is None and not batch:
                head = requested[0]
                kv = self.kv
                held = kv.held_pages(head.request.request_id)
                need = kv.grow_need(head.request.request_id, head.next_kv_length)
                raise RuntimeError(
                    "KV pool exhausted with preemption disabled: request "
                    f"{head.request.request_id} holds {held} page(s) and "
                    f"needs {need} more for its next decode, but only "
                    f"{kv.free_pages} of {kv.total_pages} pool page(s) are "
                    "free and no prefill can run (enable preempt or raise "
                    "the KV budget)"
                )

        costs = [self._provider.decode(f.next_kv_length) for f in batch]
        self._step_kind = "prefill" if carrier is not None else "decode"
        latency, pass_energy, pass_flops = sim._fused_iteration(
            carrier, costs, self._provider
        )
        self.clock += latency
        self.busy += latency
        self.energy = self.energy + pass_energy
        self.flops += pass_flops
        if carrier is not None:
            self.prefill_passes += 1
        if batch:
            self.decode_passes += 1
            self.decode_tokens += len(batch)
        self._emit(
            "step",
            latency=latency,
            request_id=None if flight is None else flight.request.request_id,
            tokens=chunk,
            decode_ids=tuple(f.request.request_id for f in batch),
        )

        finished: list[_InFlight] = []
        if flight is not None:
            flight.prefilled += chunk
            if flight.prefill_done:
                flight.generated = 1
                flight.first_token_s = self.clock
                if flight.done:
                    finished.append(flight)
        for f in batch:
            f.generated += 1
            if f.done:
                finished.append(f)
        for f in finished:
            self.active.remove(f)
            self.kv.release(f.request.request_id)
            self.completed.append(sim._completed(f, self.clock))
            self._emit("complete", request_id=f.request.request_id)

    # ------------------------------------------------------------------
    # Optimistic admission: on-demand growth, preempt-and-recompute,
    # and the host-DRAM swap tier
    # ------------------------------------------------------------------
    def _grow_batch(
        self, batch: "list[_InFlight]", carrier_flight: "_InFlight | None"
    ) -> "list[_InFlight]":
        """Grant each decode member the pages its next pass needs.

        Members are processed in the policy's priority order.  A member
        whose growth does not fit evicts the least-progressed unprotected
        victim until it fits, or is stalled for this iteration.  With the
        swap tier enabled the victim's private pages move to host DRAM
        (its progress survives; it resumes via swap-in); otherwise — with
        ``preempt=True`` — the victim is preempted for recompute.  When
        swapping every active victim still does not free enough (resident
        shared-prefix pages of swapped peers can pin the pool), the
        youngest swapped request is preempted outright, which releases
        its prefix reference — so the first member can always be granted:
        every admitted request fits the pool alone.
        """
        kv = self.kv
        granted: list[_InFlight] = []
        protected: set[int] = set()
        if carrier_flight is not None:
            protected.add(id(carrier_flight))
        for f in batch:
            if not any(f is flight for flight in self.active):
                continue  # evicted by an earlier member's growth
            need = kv.grow_need(f.request.request_id, f.next_kv_length)
            if need > 0 and need > kv.free_pages and (
                self.sim.swap or self.sim.preempt
            ):
                protected.add(id(f))
                while need > kv.free_pages:
                    victim = self._choose_victim(protected)
                    if victim is not None:
                        if self.sim.swap:
                            self._swap_out(victim)
                        else:
                            self._preempt(victim)
                        continue
                    if self.sim.swap and self.swapped:
                        self._preempt_swapped(len(self.swapped) - 1)
                        continue
                    break  # everyone left is protected: stall, not deadlock
            if need <= kv.free_pages:
                kv.grow(f.request.request_id, f.next_kv_length)
                granted.append(f)
                protected.add(id(f))
        return granted

    def _choose_victim(self, protected: "set[int]") -> "_InFlight | None":
        """The active request losing the least work: fewest generated
        tokens, then fewest prefilled, then the latest arrival (LIFO)."""
        candidates = [
            flight for flight in self.active if id(flight) not in protected
        ]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda f: (
                f.generated,
                f.prefilled,
                -f.request.arrival_s,
                -f.request.request_id,
            ),
        )

    def _preempt(self, victim: _InFlight) -> None:
        """Evict one request: release its pages, re-enqueue for recompute."""
        request = victim.request
        pages = self.kv.release(request.request_id)
        for index, flight in enumerate(self.active):
            if flight is victim:
                del self.active[index]
                break
        self.preemptions += 1
        self.recomputed_tokens += victim.prefilled + victim.generated
        if self.preemptions > 50 * max(self.offered, 1):  # pragma: no cover
            raise RuntimeError(
                f"preemption livelock: {self.preemptions} preemptions over "
                f"{self.offered} offered request(s)"
            )
        self._requeue(request)
        self._emit("preempt", request_id=request.request_id, tokens=pages)

    def _preempt_swapped(self, index: int) -> None:
        """Preempt a swapped-out request: discard its host copy, recompute.

        The last-resort path when resident shared-prefix pages pin the
        pool — releasing the request drops its prefix reference, freeing
        the shared pages once the last member leaves.
        """
        victim = self.swapped.pop(index)
        request = victim.request
        pages = self.kv.release(request.request_id)
        self.preemptions += 1
        self.recomputed_tokens += victim.prefilled + victim.generated
        if self.preemptions > 50 * max(self.offered, 1):  # pragma: no cover
            raise RuntimeError(
                f"preemption livelock: {self.preemptions} preemptions over "
                f"{self.offered} offered request(s)"
            )
        self._requeue(request)
        self._emit("preempt", request_id=request.request_id, tokens=pages)

    def _swap_out(self, victim: _InFlight) -> None:
        """Move a victim's private pages to host DRAM over the link.

        Unlike preemption the victim's prefill/decode progress survives;
        it rejoins the active set via swap-in with nothing to recompute.
        The transfer occupies the device timeline (and the link), priced
        from the page size and ``link_gbps``.
        """
        request = victim.request
        pages = self.kv.swap_out(request.request_id)
        for index, flight in enumerate(self.active):
            if flight is victim:
                del self.active[index]
                break
        latency = self._swap_latency(pages)
        self.clock += latency
        self.busy += latency
        self.swapped.append(victim)
        self.swap_outs += 1
        self.swapped_pages_total += pages
        if self.swap_outs > 50 * max(self.offered, 1):  # pragma: no cover
            raise RuntimeError(
                f"swap livelock: {self.swap_outs} swap-outs over "
                f"{self.offered} offered request(s)"
            )
        self._emit(
            "swap_out", latency=latency, request_id=request.request_id, tokens=pages
        )

    def _swap_latency(self, pages: int) -> float:
        """Transfer time of ``pages`` KV pages over the host link."""
        return pages * self.kv.page_bytes * 8.0 / (self.sim.link_gbps * 1e9)

    def _requeue(self, request: Request) -> None:
        """Re-insert a preempted request, keeping ``waiting`` arrival-sorted."""
        keys = [(r.arrival_s, r.request_id) for r in self.waiting]
        index = bisect.bisect_left(keys, (request.arrival_s, request.request_id))
        self.waiting.insert(index, request)

    # ------------------------------------------------------------------
    # Failure injection and failover (driven by the cluster layer)
    # ------------------------------------------------------------------
    def fail(self, now: float) -> "tuple[list[Request], int]":
        """Kill this replica at instant ``now``.

        Every KV page is dropped (the cache dies with the device) and every
        request routed here but not yet completed is returned — in
        ``(arrival, id)`` order — for the cluster to fail over to
        survivors, which recompute them from scratch.  Failure lands at
        pass granularity: the caller advances the run to ``now`` first, so
        passes that started before the instant stand (their completions are
        safe) and everything else is lost.  Returns ``(lost, pages)`` where
        ``pages`` is the KV page count dropped.
        """
        if self.finished:
            raise ValueError("cannot fail a finished run")
        if self.dead:
            raise ValueError("replica is already dead")
        dropped_ids = tuple(
            sorted(
                flight.request.request_id
                for flight in (*self.active, *self.swapped)
            )
        )
        lost = [flight.request for flight in self.active]
        lost.extend(flight.request for flight in self.swapped)
        lost.extend(self.waiting)
        lost.extend(self.pending)
        lost.sort(key=lambda request: (request.arrival_s, request.request_id))
        pages = self.kv.release_all()
        self.active.clear()
        self.swapped.clear()
        self.waiting.clear()
        self.pending.clear()
        if now > self.clock:
            self.clock = now
        self.dead = True
        self._emit("fail", tokens=pages, decode_ids=dropped_ids)
        return lost, pages

    def recover(self, now: float) -> None:
        """Bring a failed replica back (empty: its KV cache did not survive)."""
        if self.finished:
            raise ValueError("cannot recover a finished run")
        if not self.dead:
            raise ValueError("cannot recover a replica that is not dead")
        self.dead = False
        if now > self.clock:
            self.clock = now
        self._emit("recover")

    def resubmit(self, request: Request) -> None:
        """Re-inject a failed-over request for recompute from scratch.

        Unlike :meth:`offer`, arrival order against the pending queue is
        not enforced: the request's original arrival may predate requests
        this replica has already seen.  It keeps that original arrival, so
        its latency keeps accruing across the failure — failover does not
        reset the clock.
        """
        if self.finished:
            raise ValueError("cannot resubmit a request to a finished run")
        if self.dead:
            raise ValueError("cannot resubmit a request to a failed replica")
        self._requeue(request)
        self.offered += 1
        if self.first_arrival is None or request.arrival_s < self.first_arrival:
            self.first_arrival = request.arrival_s

    def catch_up(self, now: float) -> None:
        """Jump an idle replica's clock forward to ``now``.

        Failover resubmits bypass the pending queue (and with it the idle
        jump in :meth:`advance_until`), so the cluster calls this first —
        otherwise an idle survivor would start recomputing a victim's work
        *before* the failure instant.
        """
        if (
            now > self.clock
            and not self.active
            and not self.waiting
            and not self.swapped
        ):
            self.clock = now
            self._emit("idle")

    def note_scale(self, delta: int) -> None:
        """Record an autoscaling decision (+1 spawn, -1 drain) in the log."""
        self._emit("scale", tokens=delta)


class ServingSimulator:
    """Single-device discrete-event serving simulator.

    Parameters
    ----------
    cost_model:
        Any :class:`~repro.core.costmodel.CostModel` backend.
    model:
        The served model; must be a decoder when any request generates more
        than one token.
    policy:
        A name in :data:`POLICIES` (``"fcfs"``, ``"interleaved"``,
        ``"srpt"``, ``"priority"``) or a :class:`ServingPolicy` instance.
    max_batch:
        Decode-batch cap of the batching policies (ignored by FCFS).
    exact:
        Price every decode KV length exactly instead of interpolating over
        ``kv_samples`` anchors (see :class:`PassCostProvider`).
    batch_share:
        Fraction of the decode cost floor shared across a fused batch (see
        the module docstring); 1.0 models fully shared weight streaming.
    kv_fraction:
        Fraction of the backend's weight-free memory granted to the KV page
        pool (admission control; see :mod:`repro.serving.kv_memory`).
    page_tokens:
        Tokens per KV page.
    kv_budget:
        Explicit KV pool size in bytes, overriding the backend derivation.
    chunk_tokens:
        Prefill chunk size in tokens; 0 (default) prefills whole prompts.
    slo_targets:
        Optional per-class latency SLO targets in seconds (class ``i`` gets
        ``slo_targets[min(i, len - 1)]``); enables SLO-attainment metrics.
    admission:
        ``"worst-case"`` (default) commits a request's full ``input +
        output`` pages up front; ``"optimistic"`` commits only the prompt
        pages and grows on demand during decode (see the module docstring).
    preempt:
        Under optimistic admission, whether pool exhaustion may preempt
        (and later recompute) the least-progressed request.  With
        ``preempt=False`` a decode that cannot grow stalls instead, and the
        simulator raises ``RuntimeError`` if the pool wedges completely.
        Ignored under worst-case admission, which never needs to grow.
    swap:
        Enable the host-DRAM swap tier (optimistic admission only): on
        pool exhaustion the victim's private KV pages are *swapped out*
        over the host link instead of preempted — its progress survives
        and it resumes via swap-in, paying transfer time instead of
        recompute time.  Preempt-and-recompute remains the last resort
        when resident shared-prefix pages pin the pool.
    link_gbps:
        Host PCIe/interconnect link bandwidth in Gbit/s used to price
        swap transfers (``pages * page_bytes * 8 / (link_gbps * 1e9)``
        seconds per direction).  Only meaningful with ``swap=True``.
    engine:
        ``"object"`` (default) or ``"array"`` — see the module docstring's
        *Engines* section.  The array engine requires a registered policy
        name/class (its decisions are re-derived over columns) and numpy.
    profile:
        Record a per-phase wall-time breakdown (``admit`` / ``prefill`` /
        ``decode`` / ``metrics``) in ``run.phase_s`` — read it from
        ``simulator.last_run`` after ``simulate``; ``repro serve
        --profile`` prints it.
    per_request_detail:
        When ``False``, drop per-request :class:`RequestMetrics` from the
        result (``per_request=()``) and let the array engine pool metrics
        columnar-only — at a million requests materializing a metrics
        object per request costs more than the whole simulation.  Pooled
        aggregates are unaffected.  The cluster layer requires detail
        (it re-pools per-request rows across replicas).
    models:
        Optional *co-hosted model set*: every member's weights live in
        device memory budget terms (the KV pool is sized against the
        heaviest member) but only one model is *resident* (active) at a
        time.  Requests name their model (``Request.model``; "" = the
        default ``model``, which must be a member).  When an iteration has
        no runnable work for the resident model the replica pays a *weight
        swap* — the target's whole parameter footprint streamed over the
        ``link_gbps`` host link, advancing the clock and logged as a
        ``model_swap`` event.  A single-member set (or ``None``) keeps
        every legacy code path bit for bit.
    num_classes:
        Optional declared priority-class count.  When given alongside
        ``slo_targets``, the target list must hold exactly one shared
        target or one per class — catching the silent clamp where class
        ``i >= len(slo_targets)`` inherited the last target.
    """

    def __init__(
        self,
        cost_model: CostModel,
        model: ModelConfig,
        policy: "ServingPolicy | str" = "interleaved",
        max_batch: int = 8,
        exact: bool = False,
        kv_samples: int = DEFAULT_KV_SAMPLES,
        batch_share: float = 1.0,
        kv_fraction: float = 1.0,
        page_tokens: int = DEFAULT_PAGE_TOKENS,
        kv_budget: "int | None" = None,
        chunk_tokens: int = 0,
        slo_targets: "Sequence[float] | None" = None,
        admission: str = "worst-case",
        preempt: bool = True,
        swap: bool = False,
        link_gbps: float = 16.0,
        engine: str = "object",
        profile: bool = False,
        per_request_detail: bool = True,
        models: "Sequence[ModelConfig] | None" = None,
        num_classes: "int | None" = None,
    ) -> None:
        if not 0.0 <= batch_share <= 1.0:
            raise ValueError("batch_share must be in [0, 1]")
        if chunk_tokens < 0:
            raise ValueError("chunk_tokens must be non-negative (0 = unchunked)")
        if admission not in ADMISSION_MODES:
            raise ValueError(
                f"admission must be one of {', '.join(ADMISSION_MODES)}; "
                f"got {admission!r}"
            )
        if not link_gbps > 0.0 or link_gbps != link_gbps or link_gbps == float("inf"):
            raise ValueError("link_gbps must be a positive finite bandwidth")
        if swap and admission != "optimistic":
            raise ValueError(
                "swap requires admission='optimistic' (worst-case admission "
                "never exhausts the pool mid-decode, so there is nothing to "
                "swap)"
            )
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; known: {', '.join(ENGINES)}"
            )
        if slo_targets is not None:
            slo_targets = tuple(float(target) for target in slo_targets)
            if not slo_targets or any(target <= 0 for target in slo_targets):
                raise ValueError("slo_targets must be positive latencies")
        if num_classes is not None:
            if num_classes < 1:
                raise ValueError("num_classes must be at least 1")
            if slo_targets is not None and len(slo_targets) not in (1, num_classes):
                raise ValueError(
                    f"slo_targets has {len(slo_targets)} target(s) for "
                    f"{num_classes} priority class(es); give one shared "
                    "target or one per class"
                )
        self.num_classes = num_classes
        model_set = (model,) if models is None else tuple(models)
        if models is not None:
            if not model_set:
                raise ValueError("models must be a non-empty model set")
            names = [member.name for member in model_set]
            if len(set(names)) != len(names):
                dupes = sorted({n for n in names if names.count(n) > 1})
                raise ValueError(
                    f"models contains duplicate name(s): {', '.join(dupes)}"
                )
            if model.name not in set(names):
                raise ValueError(
                    f"the default model {model.name!r} must be a member of "
                    f"the co-hosted model set ({', '.join(names)})"
                )
        self.cost_model = cost_model
        self.model = model
        self.models = model_set
        self._model_by_name = {member.name: member for member in model_set}
        #: True when this simulator co-hosts more than one model — the
        #: single-model configuration keeps every legacy code path.
        self.multi_model = len(model_set) > 1
        if isinstance(policy, str):
            cls = POLICIES.get(policy)
            kwargs = (
                {"max_batch": max_batch}
                if cls is not None and "max_batch" in _constructor_keywords(cls)
                else {}
            )
            self.policy = make_policy(policy, **kwargs)
        else:
            self.policy = policy
        self.batch_share = batch_share
        self.chunk_tokens = chunk_tokens
        self.slo_targets = slo_targets
        self.admission = admission
        self.preempt = preempt
        self.swap = swap
        self.link_gbps = link_gbps
        self.kv_fraction = kv_fraction
        self.page_tokens = page_tokens
        self.kv_budget = kv_budget
        self.engine = engine
        self.profile = profile
        self.per_request_detail = per_request_detail
        if engine == "array" and type(self.policy) not in POLICIES.values():
            known = ", ".join(cls.__name__ for cls in POLICIES.values())
            raise ValueError(
                f"engine 'array' re-derives policy decisions over columns and "
                f"only supports the registered policies ({known}); got "
                f"{type(self.policy).__name__} — use engine='object' for "
                f"custom policies"
            )
        self.provider = PassCostProvider(
            cost_model, model, exact=exact, kv_samples=kv_samples
        )
        #: Per-model pass-cost providers (the default model reuses
        #: ``self.provider`` so single-model costing is untouched).
        self.providers = {model.name: self.provider}
        for member in model_set:
            if member.name not in self.providers:
                self.providers[member.name] = PassCostProvider(
                    cost_model, member, exact=exact, kv_samples=kv_samples
                )
        self._weight_bytes = {
            member.name: model_weight_bytes(member) for member in model_set
        }
        # Validate the KV pool configuration eagerly (budget, page size).
        self._new_accountant()
        #: Event log of the last ``simulate(record_events=True)`` run.
        self.events: "list[SimEvent] | None" = None
        #: The run behind the last one-shot ``simulate``/``simulate_stream``
        #: (profiling reads ``last_run.phase_s``).
        self.last_run: "SimulationRun | None" = None

    def _new_accountant(self) -> KvPageAccountant:
        return KvPageAccountant.for_backend(
            self.cost_model,
            self.model,
            fraction=self.kv_fraction,
            page_tokens=self.page_tokens,
            budget_bytes=self.kv_budget,
            models=self.models if self.multi_model else None,
        )

    def _config_for(self, request: Request) -> ModelConfig:
        """The :class:`ModelConfig` a request targets ("" = the default)."""
        name = request.model
        if not name or name == self.model.name:
            return self.model
        config = self._model_by_name.get(name)
        if config is None:
            known = ", ".join(sorted(self._model_by_name))
            raise ValueError(
                f"request {request.request_id} targets unknown model "
                f"{name!r}; this simulator hosts: {known}"
            )
        return config

    # ------------------------------------------------------------------
    def begin(
        self,
        record_events: bool = False,
        kv_bounds: "tuple[int, int] | None" = None,
    ) -> "SimulationRun":
        """Start an incremental run (see :class:`SimulationRun`).

        ``kv_bounds`` fixes the decode interpolation anchors up front —
        pass the :func:`decode_kv_bounds` of everything the run will ever
        be offered (the cluster layer passes the whole trace's bounds, so a
        one-replica cluster prices passes identically to ``simulate``).
        """
        if self.engine == "array":
            from repro.serving.array_engine import ArraySimulationRun

            return ArraySimulationRun(
                self, record_events=record_events, kv_bounds=kv_bounds
            )
        return SimulationRun(self, record_events=record_events, kv_bounds=kv_bounds)

    def simulate(
        self, requests: Sequence[Request], record_events: bool = False
    ) -> ServingMetrics:
        """Play a trace to completion and return its metrics."""
        ordered = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        run = self.begin(
            record_events=record_events, kv_bounds=_decode_kv_bounds(ordered)
        )
        self.events = run.events
        self.last_run = run
        run.offer_many(ordered)
        return run.finish()

    def simulate_stream(
        self,
        chunks: "Iterable[Sequence[Request]]",
        record_events: bool = False,
        kv_bounds: "tuple[int, int] | None" = None,
    ) -> ServingMetrics:
        """Play a *streamed* trace to completion — O(active) memory.

        ``chunks`` yields request batches in ``(arrival_s, request_id)``
        order (:meth:`repro.serving.trace.TraceGenerator.generate_stream`
        produces exactly this); each chunk is offered and the run advanced
        to its last arrival before the next chunk is drawn, so no more
        than one chunk of the trace is materialized at a time.  Offering
        incrementally is metric-identical to the one-shot path (the
        scheduler only acts at pass boundaries in both), which the
        differential suite pins.

        ``kv_bounds`` cannot be derived from an unmaterialized trace —
        pass ``decode_kv_bounds(generator.workloads)`` (the mix-wide
        bounds cover every request the generator can draw).  Without it
        the provider prices decodes exactly, which is correct but slow.
        """
        run = self.begin(record_events=record_events, kv_bounds=kv_bounds)
        self.events = run.events
        self.last_run = run
        for chunk in chunks:
            if chunk:
                run.offer_many(chunk)
                run.advance_until(chunk[-1].arrival_s)
        return run.finish()

    # ------------------------------------------------------------------
    def _completed(self, flight: _InFlight, completion_s: float) -> RequestMetrics:
        request = flight.request
        slo_s = 0.0
        if self.slo_targets:
            index = min(request.priority_class, len(self.slo_targets) - 1)
            slo_s = self.slo_targets[index]
        return RequestMetrics(
            request_id=request.request_id,
            arrival_s=request.arrival_s,
            first_token_s=flight.first_token_s,
            completion_s=completion_s,
            input_tokens=request.input_tokens,
            output_tokens=request.output_tokens,
            priority_class=request.priority_class,
            slo_s=slo_s,
            model=request.model,
        )

    def _fused_decode(
        self, costs: "list[PassCost]"
    ) -> "tuple[float, EnergyBreakdown, float]":
        """Latency, energy and FLOPs of one pure fused decode iteration."""
        return self._fused_iteration(None, costs)

    def _fused_iteration(
        self,
        carrier: "PassCost | None",
        costs: "list[PassCost]",
        provider: "PassCostProvider | None" = None,
    ) -> "tuple[float, EnergyBreakdown, float]":
        """One device iteration: an optional prefill chunk fused with decodes.

        Without a carrier the first decode member pays the shared floor and
        the other ``B - 1`` ride along; with a carrier (a prefill chunk,
        which streams every FC weight anyway) all ``B`` decode floors are
        shareable.  Latency is floored at the slowest member — a fused pass
        cannot beat its largest constituent.  ``provider`` selects whose
        decode floor is shared (multi-model runs pass the resident model's
        provider; the default is the simulator's own).
        """
        if carrier is None and len(costs) == 1:
            only = costs[0]
            return only.latency_s, only.energy, only.flops
        if carrier is not None and not costs:
            return carrier.latency_s, carrier.energy, carrier.flops
        base = (self.provider if provider is None else provider).base()
        if carrier is None:
            parts = costs
            shared = self.batch_share * (len(costs) - 1)
        else:
            parts = [carrier, *costs]
            shared = self.batch_share * len(costs)
        latency = sum(cost.latency_s for cost in parts) - shared * base.latency_s
        latency = max(latency, max(cost.latency_s for cost in parts))
        energy = EnergyBreakdown(
            normal_memory_j=self._shared_component(
                [c.energy.normal_memory_j for c in parts],
                shared * base.energy.normal_memory_j,
            ),
            pim_op_j=self._shared_component(
                [c.energy.pim_op_j for c in parts], shared * base.energy.pim_op_j
            ),
            npu_cores_j=self._shared_component(
                [c.energy.npu_cores_j for c in parts],
                shared * base.energy.npu_cores_j,
            ),
        )
        flops = sum(cost.flops for cost in parts)  # batching shares bytes, not math
        return latency, energy, flops

    @staticmethod
    def _shared_component(values: "list[float]", saved: float) -> float:
        return max(sum(values) - saved, max(values))

    def _finalize(self, run: "SimulationRun", makespan: float) -> ServingMetrics:
        completed = run.completed
        busy = run.busy
        energy = run.energy
        flops = run.flops
        prefill_passes = run.prefill_passes
        decode_passes = run.decode_passes
        decode_tokens = run.decode_tokens
        kv = run.kv
        latencies = [metrics.latency_s for metrics in completed]
        ttfts = [metrics.ttft_s for metrics in completed]
        tpots = [metrics.tpot_s for metrics in completed if metrics.output_tokens > 1]
        # Sort once per value list; percentiles interpolate over the same
        # sorted copy (means stay over arrival order, as before).
        ordered_latencies = sorted(latencies)
        ordered_ttfts = sorted(ttfts)
        output_tokens = sum(metrics.output_tokens for metrics in completed)
        mean = lambda values: sum(values) / len(values) if values else 0.0  # noqa: E731
        slo_attainment: "float | None" = None
        slo_by_class: dict[str, float] = {}
        slo_by_model_class: dict[str, float] = {}
        if self.slo_targets is not None:
            scored = [metrics for metrics in completed if metrics.slo_s > 0.0]
            if scored:
                slo_attainment = mean([1.0 if m.slo_met else 0.0 for m in scored])
                classes = sorted({metrics.priority_class for metrics in scored})
                slo_by_class = {
                    str(cls): mean(
                        [
                            1.0 if m.slo_met else 0.0
                            for m in scored
                            if m.priority_class == cls
                        ]
                    )
                    for cls in classes
                }
                if self.multi_model:
                    default = self.model.name
                    pairs = sorted(
                        {
                            (m.model or default, m.priority_class)
                            for m in scored
                        }
                    )
                    slo_by_model_class = {
                        f"{name}/{cls}": mean(
                            [
                                1.0 if m.slo_met else 0.0
                                for m in scored
                                if (m.model or default) == name
                                and m.priority_class == cls
                            ]
                        )
                        for name, cls in pairs
                    }
            else:
                slo_attainment = 1.0
        return ServingMetrics(
            backend=self.cost_model.name,
            model=self.model.name,
            policy=self.policy.name,
            num_requests=len(completed),
            makespan_s=makespan,
            busy_s=busy,
            utilization=busy / makespan if makespan > 0 else 0.0,
            output_tokens=output_tokens,
            tokens_per_s=output_tokens / makespan if makespan > 0 else 0.0,
            requests_per_s=len(completed) / makespan if makespan > 0 else 0.0,
            latency_mean_s=mean(latencies),
            latency_p50_s=_percentile_sorted(ordered_latencies, 50.0),
            latency_p99_s=_percentile_sorted(ordered_latencies, 99.0),
            ttft_mean_s=mean(ttfts),
            ttft_p50_s=_percentile_sorted(ordered_ttfts, 50.0),
            ttft_p99_s=_percentile_sorted(ordered_ttfts, 99.0),
            tpot_mean_s=mean(tpots),
            energy_j=energy.total_j,
            flops=flops,
            prefill_passes=prefill_passes,
            decode_passes=decode_passes,
            mean_decode_batch=decode_tokens / decode_passes if decode_passes else 0.0,
            admission=self.admission,
            admissions=run.admissions,
            peak_active=run.peak_active,
            preemptions=run.preemptions,
            recomputed_tokens=run.recomputed_tokens,
            swap_outs=run.swap_outs,
            swap_ins=run.swap_ins,
            swapped_pages=run.swapped_pages_total,
            link_gbps=self.link_gbps if self.swap else 0.0,
            chunk_tokens=self.chunk_tokens,
            kv_page_tokens=kv.page_tokens,
            kv_pages_total=kv.total_pages,
            kv_peak_pages=kv.peak_reserved_pages,
            kv_budget_bytes=kv.budget_bytes,
            slo_attainment=slo_attainment,
            slo_by_class=slo_by_class,
            models=(
                tuple(member.name for member in self.models)
                if self.multi_model
                else ()
            ),
            model_swaps=run.model_swaps,
            model_swap_s=run.model_swap_s,
            slo_by_model_class=slo_by_model_class,
            per_request=tuple(completed) if self.per_request_detail else (),
        )
