"""Seeded failure schedules for the cluster simulator.

A :class:`FailureSchedule` decides *when replicas die* — and optionally
when they come back — independently of the trace and of the scheduler, so
the same chaos scenario can be replayed against any policy, router, or
autoscaler.  ``events(num_replicas)`` expands a schedule into a sorted
tuple of :class:`FailureEvent`\\ s that :class:`~repro.serving.cluster.
ClusterSimulator` applies at their instants: a ``fail`` kills the replica
mid-decode (its KV pages and in-flight requests are lost and failed over
to survivors for recompute), a ``recover`` brings it back empty.

Schedules are deterministic: the ``seeded`` schedule draws from
``random.Random(f"failures/{seed}")``, so the same seed and fleet size
produce the same chaos byte for byte — a failure run can be replayed and
diffed exactly like any other simulation here.

The registry :data:`FAILURE_SCHEDULES` and :func:`make_failure_schedule`
follow the ``make_policy`` / ``make_router`` validated-construction idiom:
unknown names raise listing the known spellings, and keyword arguments a
schedule does not accept raise instead of being dropped.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = [
    "FailureEvent",
    "FailureSchedule",
    "NoFailures",
    "SingleFailure",
    "SeededFailures",
    "FAILURE_SCHEDULES",
    "make_failure_schedule",
]


@dataclass(frozen=True, order=True)
class FailureEvent:
    """One scheduled fleet change: replica ``replica`` fails or recovers
    at ``time_s``.  Ordered by time (replica, then kind, break ties)."""

    time_s: float
    replica: int
    kind: str  # "fail" | "recover"


class FailureSchedule:
    """Base class: a deterministic plan of replica deaths and recoveries."""

    name = "failure-schedule"

    def events(self, num_replicas: int) -> tuple[FailureEvent, ...]:
        """The schedule expanded against a fleet of ``num_replicas``."""
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class NoFailures(FailureSchedule):
    """Nothing ever fails — the baseline every chaos run is diffed against."""

    name = "none"

    def events(self, num_replicas: int) -> tuple[FailureEvent, ...]:
        return ()


class SingleFailure(FailureSchedule):
    """Kill one replica at a fixed instant, optionally recover it later.

    The workhorse scenario of the failover tests and benches: precise
    enough to place the failure mid-decode and measure p99 degradation
    through the event window.
    """

    name = "single"

    def __init__(
        self,
        replica: int = 0,
        at_s: float = 1.0,
        recover_after_s: "float | None" = None,
    ) -> None:
        if replica < 0:
            raise ValueError("replica must be non-negative")
        if at_s < 0.0:
            raise ValueError("at_s must be non-negative")
        if recover_after_s is not None and recover_after_s <= 0.0:
            raise ValueError("recover_after_s must be positive (or None)")
        self.replica = replica
        self.at_s = at_s
        self.recover_after_s = recover_after_s

    def events(self, num_replicas: int) -> tuple[FailureEvent, ...]:
        if self.replica >= num_replicas:
            raise ValueError(
                f"failure schedule kills replica {self.replica} but the "
                f"cluster starts with {num_replicas} replica(s)"
            )
        scheduled = [FailureEvent(self.at_s, self.replica, "fail")]
        if self.recover_after_s is not None:
            scheduled.append(
                FailureEvent(
                    self.at_s + self.recover_after_s, self.replica, "recover"
                )
            )
        return tuple(scheduled)

    def describe(self) -> str:
        recovery = (
            "no recovery"
            if self.recover_after_s is None
            else f"recovers after {self.recover_after_s:g}s"
        )
        return f"kill replica {self.replica} at {self.at_s:g}s ({recovery})"


class SeededFailures(FailureSchedule):
    """Poisson chaos: failures at mean interval ``mtbf_s`` until ``horizon_s``.

    Victims are drawn uniformly among the replicas alive at the failure
    instant; the last standing replica is never killed (failover needs a
    survivor to recompute on).  Fully determined by ``(seed,
    num_replicas)`` — the RNG stream is seeded ``f"failures/{seed}"``.
    """

    name = "seeded"

    def __init__(
        self,
        seed: int = 0,
        mtbf_s: float = 10.0,
        horizon_s: float = 60.0,
        recover_after_s: "float | None" = 5.0,
        max_failures: "int | None" = None,
    ) -> None:
        if mtbf_s <= 0.0:
            raise ValueError("mtbf_s must be positive")
        if horizon_s <= 0.0:
            raise ValueError("horizon_s must be positive")
        if recover_after_s is not None and recover_after_s <= 0.0:
            raise ValueError("recover_after_s must be positive (or None)")
        if max_failures is not None and max_failures < 0:
            raise ValueError("max_failures must be non-negative (or None)")
        self.seed = seed
        self.mtbf_s = mtbf_s
        self.horizon_s = horizon_s
        self.recover_after_s = recover_after_s
        self.max_failures = max_failures

    def events(self, num_replicas: int) -> tuple[FailureEvent, ...]:
        rng = random.Random(f"failures/{self.seed}")
        scheduled: list[FailureEvent] = []
        down_until: dict[int, float] = {}
        clock = 0.0
        failures = 0
        while self.max_failures is None or failures < self.max_failures:
            clock += rng.expovariate(1.0) * self.mtbf_s
            if clock > self.horizon_s:
                break
            alive = [
                replica
                for replica in range(num_replicas)
                if down_until.get(replica, 0.0) <= clock
            ]
            if len(alive) <= 1:
                continue  # never orphan the fleet: keep one survivor
            victim = alive[rng.randrange(len(alive))]
            scheduled.append(FailureEvent(clock, victim, "fail"))
            failures += 1
            if self.recover_after_s is not None:
                back = clock + self.recover_after_s
                scheduled.append(FailureEvent(back, victim, "recover"))
                down_until[victim] = back
            else:
                down_until[victim] = float("inf")
        return tuple(sorted(scheduled))

    def describe(self) -> str:
        return (
            f"Poisson failures, MTBF {self.mtbf_s:g}s over {self.horizon_s:g}s "
            f"(seed {self.seed})"
        )


#: Failure-schedule registry: CLI/experiment name -> class, in
#: presentation order (``repro list`` prints these).
FAILURE_SCHEDULES: dict[str, type[FailureSchedule]] = {
    "none": NoFailures,
    "single": SingleFailure,
    "seeded": SeededFailures,
}


def make_failure_schedule(name: str, **kwargs) -> FailureSchedule:
    """Instantiate a failure schedule by name — the single validation point.

    Unknown names raise with the list of known schedules; keyword
    arguments the named schedule does not accept raise instead of being
    dropped (the same validated construction path as ``make_policy`` /
    ``make_router``).
    """
    from repro.serving.simulator import _validated_construct

    return _validated_construct("failure schedule", FAILURE_SCHEDULES, name, kwargs)
