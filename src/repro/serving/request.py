"""Serving requests and their per-request latency metrics.

A :class:`Request` is one inference job in a multi-user trace: it arrives at
``arrival_s``, carries ``input_tokens`` of prompt and wants ``output_tokens``
of completion.  It is the serving-level counterpart of
:class:`repro.models.workload.Workload` (which describes the *shape* of a
request with no notion of time); :meth:`Request.workload` converts back for
code that speaks the single-request vocabulary.

:class:`RequestMetrics` is what the simulator records once a request
completes: the three timestamps every serving study cares about (arrival,
first token, completion) plus the token counts, from which the standard
derived metrics follow — TTFT (time to first token), TPOT (time per output
token after the first) and end-to-end latency.

Requests carry a ``priority_class`` (0 = most important) for the
class-aware schedulers, and completed metrics carry the latency SLO target
the simulator assigned to that class (``slo_s``; 0 means no target), from
which per-class SLO attainment is aggregated.

Requests may also declare a shared prompt prefix (``prefix_id`` names the
group, ``prefix_tokens`` its length): every member of a group opens with
the same system prefix, and the KV page accountant stores those pages once,
reference-counted (:mod:`repro.serving.kv_memory`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.workload import Workload

__all__ = ["Request", "RequestMetrics"]


@dataclass(frozen=True, slots=True)
class Request:
    """One inference request of a serving trace."""

    request_id: int
    arrival_s: float
    input_tokens: int
    output_tokens: int = 1
    #: Scheduling class, 0 = most important (priority-class policies).
    priority_class: int = 0
    #: Shared-prefix group (-1 = no sharing).  Requests of one group open
    #: with the same system prefix and the KV accountant stores its whole
    #: pages once, reference-counted.
    prefix_id: int = -1
    #: Length of the shared prefix in tokens (part of ``input_tokens``).
    prefix_tokens: int = 0
    #: Model the request targets, by name ("" = the simulator's default
    #: model).  Replicas co-hosting a model set pay a weight swap when
    #: the active model changes (:mod:`repro.serving.simulator`).
    model: str = ""

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be non-negative")
        if self.input_tokens <= 0:
            raise ValueError("input_tokens must be positive")
        if self.output_tokens < 1:
            raise ValueError("output_tokens must be at least 1")
        if self.priority_class < 0:
            raise ValueError("priority_class must be non-negative")
        if self.prefix_id < -1:
            raise ValueError("prefix_id must be -1 (none) or a group id >= 0")
        if not 0 <= self.prefix_tokens <= self.input_tokens:
            raise ValueError("prefix_tokens must be in [0, input_tokens]")
        if self.prefix_tokens > 0 and self.prefix_id < 0:
            raise ValueError("prefix_tokens > 0 requires a prefix_id >= 0")

    # ------------------------------------------------------------------
    @property
    def total_tokens(self) -> int:
        return self.input_tokens + self.output_tokens

    @property
    def num_generation_passes(self) -> int:
        """Decode passes after the prefill (which produces the first token)."""
        return self.output_tokens - 1

    def workload(self) -> Workload:
        """The single-request workload shape of this request."""
        return Workload(self.input_tokens, self.output_tokens)

    def label(self) -> str:
        return f"#{self.request_id}@{self.arrival_s:.3f}s ({self.input_tokens},{self.output_tokens})"


@dataclass(frozen=True, slots=True)
class RequestMetrics:
    """Timestamps and token counts of one completed request."""

    request_id: int
    arrival_s: float
    first_token_s: float
    completion_s: float
    input_tokens: int
    output_tokens: int
    #: Scheduling class of the request (0 = most important).
    priority_class: int = 0
    #: Latency SLO target assigned by the simulator; 0 means no target.
    slo_s: float = 0.0
    #: Model the request was served by ("" = the simulator's default).
    model: str = ""

    # ------------------------------------------------------------------
    @property
    def ttft_s(self) -> float:
        """Time to first token: queueing delay plus the prefill pass."""
        return self.first_token_s - self.arrival_s

    @property
    def latency_s(self) -> float:
        """End-to-end request latency (arrival to last token)."""
        return self.completion_s - self.arrival_s

    @property
    def tpot_s(self) -> float:
        """Mean time per output token after the first (0 for 1-token requests)."""
        if self.output_tokens <= 1:
            return 0.0
        return (self.completion_s - self.first_token_s) / (self.output_tokens - 1)

    @property
    def slo_met(self) -> "bool | None":
        """Whether the latency SLO was met (``None`` when no target was set)."""
        if self.slo_s <= 0.0:
            return None
        return self.latency_s <= self.slo_s

    def to_dict(self) -> dict:
        """JSON-stable representation (used by reports and determinism tests).

        The ``model`` key appears only for requests that named a model, so
        single-model traces keep their pre-multi-model representation byte
        for byte.
        """
        document = {
            "request_id": self.request_id,
            "arrival_s": self.arrival_s,
            "first_token_s": self.first_token_s,
            "completion_s": self.completion_s,
            "input_tokens": self.input_tokens,
            "output_tokens": self.output_tokens,
            "priority_class": self.priority_class,
            "slo_s": self.slo_s,
            "slo_met": self.slo_met,
            "ttft_s": self.ttft_s,
            "latency_s": self.latency_s,
            "tpot_s": self.tpot_s,
        }
        if self.model:
            document["model"] = self.model
        return document
