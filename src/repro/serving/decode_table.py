"""Dense decode-cost lookup tables for the vectorized serving engine.

The object engine prices every decode pass through
:meth:`repro.serving.simulator.PassCostProvider.decode` — a dict lookup, a
bisect over the anchor grid and a :func:`~repro.core.costmodel.lerp_pass_cost`
per *new* KV length.  That is fast enough at hundreds of requests but it is
still a Python call per token; the array engine instead materializes the
whole ``kv -> cost`` function once per (model, backend, anchor grid) as a
:class:`DecodeCostTable`: five dense float64 columns (latency, the three
dynamic-energy components, FLOPs) indexed by ``kv - kv_lo``.

Bit-exactness contract
----------------------
``table[kv]`` equals ``provider.decode(kv)`` **bit for bit** for every KV
length in ``[kv_lo, kv_hi]``:

* anchor evaluations go through the provider's own ``_decode_exact`` (and
  with it the backend's shared, persistently cacheable pass-cost cache —
  the PR 2 disk cache), so the anchors cost nothing when warm;
* between anchors the table applies the *same* IEEE-754 operations as
  :func:`~repro.core.costmodel.lerp_pass_cost` — ``a + w * (b - a)`` with
  ``w = (kv - low) / (high - low)`` — vectorized over the segment; the
  ``weight <= 0`` / ``weight >= 1`` early returns are reproduced with
  explicit masks (``a + 1.0 * (b - a)`` is *not* always ``b`` in floating
  point, so the masks are load-bearing);
* KV lengths the provider has already priced exactly (``_exact_costs``,
  which ``prepare()`` deliberately keeps) override the interpolated value,
  mirroring the ``decode()`` lookup order.

The table also precomputes whether the fused-batch cost floors can ever
bind on it (:attr:`DecodeCostTable.floor_free`): when every column value is
at least the ``base = c(1)`` component, ``sum - shared >= max`` holds for
every batch drawn from the table, so the array engine may aggregate whole
runs of decode iterations with prefix sums instead of per-iteration maxes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "DecodeCostTable",
    "build_decode_table",
    "table_to_payload",
    "table_from_payload",
]


@dataclass(frozen=True)
class DecodeCostTable:
    """Dense per-KV-length decode costs over ``[kv_lo, kv_hi]``.

    ``latency[kv - kv_lo]`` (etc.) is bit-identical to
    ``provider.decode(kv)`` — see the module docstring for the contract.
    ``base`` is the ``c(1)`` floor as plain floats in the same column
    order; ``prefix_*`` are exclusive prefix sums (``prefix[j] = sum of the
    first j entries``) exposed as Python float lists so the engine's hot
    loop aggregates iteration runs with two list indexings per column.
    """

    kv_lo: int
    kv_hi: int
    latency: np.ndarray
    energy_memory: np.ndarray
    energy_pim: np.ndarray
    energy_npu: np.ndarray
    flops: np.ndarray
    #: ``(latency, mem_j, pim_j, npu_j, flops)`` of the shared c(1) floor.
    base: tuple[float, float, float, float, float]
    #: True when no fused-batch floor can bind on any batch from this
    #: table (every value >= its base component and latencies positive);
    #: the precondition of the array engine's prefix-sum macro stepping.
    floor_free: bool

    def __post_init__(self) -> None:
        size = self.kv_hi - self.kv_lo + 1
        for column in (
            self.latency,
            self.energy_memory,
            self.energy_pim,
            self.energy_npu,
            self.flops,
        ):
            if len(column) != size:
                raise ValueError(
                    f"column length {len(column)} does not cover "
                    f"[{self.kv_lo}, {self.kv_hi}]"
                )

    def __len__(self) -> int:
        return self.kv_hi - self.kv_lo + 1

    def columns(self) -> "tuple[list, list, list, list, list]":
        """The five columns as Python float lists (scalar hot-loop form)."""
        return (
            self.latency.tolist(),
            self.energy_memory.tolist(),
            self.energy_pim.tolist(),
            self.energy_npu.tolist(),
            self.flops.tolist(),
        )

    def prefix_sums(self) -> "tuple[list, list, list, list, list]":
        """Exclusive prefix sums of the columns as Python float lists.

        ``numpy.cumsum`` accumulates sequentially, so ``prefix[b] -
        prefix[a]`` reproduces the left-to-right partial sums the object
        engine would have accumulated (up to the subtraction's last-bit
        rounding, which is why macro-stepped metrics are pinned to 1e-9
        rather than bit-identical).
        """
        out = []
        for column in (
            self.latency,
            self.energy_memory,
            self.energy_pim,
            self.energy_npu,
            self.flops,
        ):
            prefix = np.empty(len(column) + 1, dtype=np.float64)
            prefix[0] = 0.0
            np.cumsum(column, out=prefix[1:])
            out.append(prefix.tolist())
        return tuple(out)


def _interpolate_column(
    kv: np.ndarray, anchors: np.ndarray, anchor_values: np.ndarray
) -> np.ndarray:
    """Vectorized ``lerp_pass_cost`` over one scalar cost component.

    Reproduces ``PassCostProvider.decode`` exactly: bracket each KV length
    with ``bisect_left`` semantics (``searchsorted(side="left")`` clipped
    to ``[1, len - 1]``), mix with ``low + w * (high - low)``, and return
    the anchor value verbatim when the weight falls outside ``(0, 1)``.
    """
    position = np.searchsorted(anchors, kv, side="left")
    position = np.clip(position, 1, len(anchors) - 1)
    low_kv = anchors[position - 1]
    high_kv = anchors[position]
    low_value = anchor_values[position - 1]
    high_value = anchor_values[position]
    weight = (kv - low_kv) / (high_kv - low_kv)
    mixed = low_value + weight * (high_value - low_value)
    return np.where(weight <= 0.0, low_value, np.where(weight >= 1.0, high_value, mixed))


def build_decode_table(provider, kv_lo: int, kv_hi: int) -> DecodeCostTable:
    """Materialize ``provider.decode`` over ``[kv_lo, kv_hi]`` (see module doc).

    The provider must have its anchor grid prepared
    (:meth:`~repro.serving.simulator.PassCostProvider.prepare`) and must
    not be in ``exact`` mode — exact decoding has no anchor structure to
    densify, so the array engine prices those passes one by one instead.
    """
    if kv_hi < kv_lo:
        raise ValueError("kv_hi must be at least kv_lo")
    if provider.exact:
        raise ValueError("exact providers price per KV length; no table to build")
    if kv_lo < kv_hi and len(provider._anchors) < 2:
        raise ValueError("provider has no anchor grid; call prepare() first")

    extractors = {
        "latency": lambda cost: cost.latency_s,
        "energy_memory": lambda cost: cost.energy.normal_memory_j,
        "energy_pim": lambda cost: cost.energy.pim_op_j,
        "energy_npu": lambda cost: cost.energy.npu_cores_j,
        "flops": lambda cost: cost.flops,
    }
    columns = {}
    if kv_lo == kv_hi:
        # Single-value KV range (e.g. prompt == max context, so every
        # decode pass runs at one length): no interpolation structure is
        # needed or available — price the one length through the
        # provider's own decode path and emit a 1-row table.  A grid with
        # fewer than two anchors is fine here; decode() falls back to
        # exact pricing for it, and so do we.
        cost = provider.decode(kv_lo)
        for name, extract in extractors.items():
            columns[name] = np.asarray([extract(cost)], dtype=np.float64)
    else:
        anchors = np.asarray(provider._anchors, dtype=np.int64)
        anchor_costs = [provider._decode_exact(int(anchor)) for anchor in anchors]
        kv = np.arange(kv_lo, kv_hi + 1, dtype=np.int64)
        for name, extract in extractors.items():
            values = np.asarray(
                [extract(cost) for cost in anchor_costs], dtype=np.float64
            )
            columns[name] = _interpolate_column(kv, anchors, values)

    # decode() consults _exact_costs before interpolating, and prepare()
    # deliberately keeps exact prices across grids — mirror that override
    # so a reused provider tables out exactly what decode() would return.
    for exact_kv, cost in provider._exact_costs.items():
        if kv_lo <= exact_kv <= kv_hi:
            index = exact_kv - kv_lo
            for name, extract in extractors.items():
                columns[name][index] = extract(cost)

    base_cost = provider.base()
    base = (
        base_cost.latency_s,
        base_cost.energy.normal_memory_j,
        base_cost.energy.pim_op_j,
        base_cost.energy.npu_cores_j,
        base_cost.flops,
    )
    floor_free = bool(
        np.all(columns["latency"] > 0.0)
        and np.all(columns["latency"] >= base[0])
        and np.all(columns["energy_memory"] >= base[1])
        and np.all(columns["energy_pim"] >= base[2])
        and np.all(columns["energy_npu"] >= base[3])
    )
    return DecodeCostTable(
        kv_lo=kv_lo,
        kv_hi=kv_hi,
        latency=columns["latency"],
        energy_memory=columns["energy_memory"],
        energy_pim=columns["energy_pim"],
        energy_npu=columns["energy_npu"],
        flops=columns["flops"],
        base=base,
        floor_free=floor_free,
    )


def table_to_payload(table: DecodeCostTable) -> dict:
    """Plain-Python form of a table for the persistent cache layer.

    The disk cache compares cached values with ``!=`` when merging and
    pickles whole sections, so payloads stay numpy-free: five float lists,
    the base tuple and the floor flag.  Round-trips bit-exactly —
    ``float64 -> Python float -> float64`` is lossless.
    """
    return {
        "kv_lo": table.kv_lo,
        "kv_hi": table.kv_hi,
        "latency": table.latency.tolist(),
        "energy_memory": table.energy_memory.tolist(),
        "energy_pim": table.energy_pim.tolist(),
        "energy_npu": table.energy_npu.tolist(),
        "flops": table.flops.tolist(),
        "base": tuple(table.base),
        "floor_free": table.floor_free,
    }


def table_from_payload(payload: dict) -> "DecodeCostTable | None":
    """Rebuild a table from :func:`table_to_payload` output.

    Returns ``None`` on any structural mismatch (wrong type, missing key,
    column length inconsistent with the KV range) — a stale or corrupted
    cache entry must degrade to a rebuild, never to a crash.
    """
    try:
        table = DecodeCostTable(
            kv_lo=int(payload["kv_lo"]),
            kv_hi=int(payload["kv_hi"]),
            latency=np.asarray(payload["latency"], dtype=np.float64),
            energy_memory=np.asarray(payload["energy_memory"], dtype=np.float64),
            energy_pim=np.asarray(payload["energy_pim"], dtype=np.float64),
            energy_npu=np.asarray(payload["energy_npu"], dtype=np.float64),
            flops=np.asarray(payload["flops"], dtype=np.float64),
            base=tuple(payload["base"]),
            floor_free=bool(payload["floor_free"]),
        )
    except Exception:  # noqa: BLE001 - corrupt cache entry means "rebuild"
        return None
    if len(table.base) != 5:
        return None
    return table


def table_matches_provider(table: DecodeCostTable, provider, sample: int = 64) -> bool:
    """Spot-check the bit-exactness contract (used by tests and benches)."""
    span = table.kv_hi - table.kv_lo + 1
    step = max(1, span // sample)
    checked = list(range(table.kv_lo, table.kv_hi + 1, step)) + [table.kv_hi]
    for kv in checked:
        cost = provider.decode(kv)
        index = kv - table.kv_lo
        if (
            table.latency[index] != cost.latency_s
            or table.energy_memory[index] != cost.energy.normal_memory_j
            or table.energy_pim[index] != cost.energy.pim_op_j
            or table.energy_npu[index] != cost.energy.npu_cores_j
            or table.flops[index] != cost.flops
        ):
            return False
    return True
