"""Scheduling-invariant checks over the serving simulator's event log.

The simulator can record a :class:`SimEvent` per scheduling decision
(``simulate(..., record_events=True)``).  :func:`check_invariants` replays
that log against the trace and returns a list of human-readable violation
strings — empty when the run was sound.  ``repro serve --validate`` exits
nonzero on violations, so benches and CI can use the checker as a cheap
oracle next to any serving experiment.

The invariants checked (the scheduler's contract):

no KV over-subscription
    At every event, committed KV pages never exceed the pool
    (``kv_reserved_pages <= kv_total_pages``).  When the page geometry is
    supplied (``page_tokens`` plus the ``admission`` mode), the checker
    additionally replays the page *ledger* itself — commit at admission,
    on-demand growth per decode step under optimistic admission, release at
    preemption/completion — and requires every event's reported reservation
    to equal the replayed one.  A forged event (say, a ``preempt`` that
    claims to release pages the request never held) breaks the ledger and
    is reported, so the log proves no over-subscription *at any instant
    even with growth*.
work conservation
    The device never idles while an admitted request has a runnable pass:
    an ``idle`` clock jump is only legal when nothing is in flight, and
    every ``step`` must start exactly where the previous event left the
    clock whenever work was in flight.
token conservation (across preemption)
    Per in-flight *episode* (admit → complete/preempt), prefill chunk
    tokens never exceed the prompt and decodes never start before the
    episode's own prefill finished.  The completing episode must have
    prefilled exactly the prompt and decoded exactly ``output_tokens - 1``
    passes — preempted work is re-done exactly, from scratch.
completion
    Every request of the trace is completed exactly once, every admission
    beyond the first is preceded by a preemption (``admits == preempts +
    1``), and nothing is left in flight at the end of the log.
monotone time
    Event clocks never move backwards; ``admit``, ``preempt`` and
    ``complete`` consume no device time.

Production-ops events (``fail``, ``recover``, ``scale``) extend the
contract across a cluster: :func:`check_cluster_invariants` replays every
replica's log independently (a failure must drop exactly the pages and
requests the replica held, a dead replica must stay silent until its
recovery, an autoscaled replica's log must open with its scale-up marker)
and then checks the *global* books — every request of the trace completes
exactly once across all replicas, and every admission is explained by a
preemption or a failure drop (``admits == preempts + drops + 1``).  A
forged or deleted failure event breaks either the per-replica ledger or
the global accounting and is reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.serving.request import Request

__all__ = ["SimEvent", "check_invariants", "check_cluster_invariants"]

#: Relative slack for floating-point clock comparisons.
_CLOCK_EPS = 1e-9


@dataclass(frozen=True)
class SimEvent:
    """One scheduling event of a simulated trace.

    Kinds
    -----
    ``idle``
        The device had nothing admitted and jumped the clock to the next
        arrival.  ``latency_s`` is 0; legal only with nothing in flight.
    ``admit``
        A request was admitted: its KV pages were committed (``tokens`` is
        the page count — the worst-case ``input + output`` pages under
        worst-case admission, the prompt pages under optimistic
        admission).  Instantaneous.
    ``step``
        One device iteration: a prefill chunk of ``request_id``
        (``tokens`` chunk tokens; ``request_id`` is ``None`` for a pure
        decode iteration) fused with one decode token for each request in
        ``decode_ids``.  ``latency_s`` is the iteration's device time.
    ``preempt``
        ``request_id`` was evicted to free KV pages (``tokens`` is the
        page count released) and re-enqueued for recompute from scratch.
        Instantaneous; emitted only under optimistic admission.
    ``swap_out``
        ``request_id``'s private KV pages (``tokens``) were moved to host
        DRAM over the modeled link; ``latency_s`` is the transfer time
        (it advances the clock).  The request keeps its progress and its
        shared-prefix reference; it must not prefill, decode or complete
        until its ``swap_in``.
    ``swap_in``
        ``request_id``'s private pages (``tokens``) were restored to the
        pool; ``latency_s`` is the transfer time.  The request resumes
        exactly where it was swapped out — nothing is recomputed.
    ``complete``
        ``request_id`` finished and released its KV pages.  Instantaneous.
    ``fail``
        The replica died: every KV page was dropped (``tokens`` is the
        page count) and every request vanished (``decode_ids`` lists the
        *admitted* ones — queued victims left no device state behind).
        The replica is dead until a ``recover`` event.
    ``recover``
        A failed replica came back, empty.
    ``model_swap``
        The replica swapped its *active model*: the weights of ``model``
        were streamed in over the host link (``tokens`` is the byte count
        moved, ``latency_s`` the transfer time — it advances the clock).
        Only emitted by multi-model replicas; until the next
        ``model_swap`` every prefill/decode must belong to ``model``.
    ``scale``
        An autoscaling decision: ``tokens`` is +1 (this replica was
        spawned — must be its log's first event) or -1 (this replica was
        marked draining: it finishes its work but takes no new routes).

    ``clock_s`` is the simulation time *after* the event; ``active`` and
    ``waiting`` are the in-flight/queued request counts after it.
    """

    kind: str
    clock_s: float
    latency_s: float = 0.0
    request_id: "int | None" = None
    tokens: int = 0
    decode_ids: tuple[int, ...] = ()
    active: int = 0
    waiting: int = 0
    kv_reserved_pages: int = 0
    kv_total_pages: int = 0
    #: Target model of a ``model_swap`` event; "" on every other kind (so
    #: single-model event logs keep their pre-multi-model shape).
    model: str = ""


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= _CLOCK_EPS * max(1.0, abs(a), abs(b))


def _pages_for(tokens: int, page_tokens: int) -> int:
    return -(-tokens // page_tokens)


class _Ledger:
    """Replays the page accounting the events claim, when geometry is known.

    Mirrors :class:`~repro.serving.kv_memory.KvPageAccountant` exactly:
    ``held`` is each request's *private* resident pages, shared-prefix
    groups are reference-counted and their whole pages counted once, and
    ``swapped`` parks private pages in host DRAM between ``swap_out`` /
    ``swap_in`` events.  Every quantity is re-derived from the trace's
    request shapes — a forged refcount, an invented share, or a deleted
    swap event makes the replayed reservation diverge from the reported
    one and is caught.
    """

    def __init__(self, page_tokens: int, admission: str) -> None:
        if page_tokens < 1:
            raise ValueError("page_tokens must be at least 1")
        if admission not in ("worst-case", "optimistic"):
            raise ValueError(
                f"admission must be 'worst-case' or 'optimistic', got {admission!r}"
            )
        self.page_tokens = page_tokens
        self.optimistic = admission == "optimistic"
        self.held: dict[int, int] = {}
        #: Private pages per request parked in host DRAM.
        self.swapped: dict[int, int] = {}
        #: prefix_id -> [shared pages, refcount] of resident groups.
        self.groups: dict[int, list[int]] = {}
        self.request_group: dict[int, int] = {}

    @property
    def reserved(self) -> int:
        return sum(self.held.values()) + sum(
            pages for pages, _refcount in self.groups.values()
        )

    def _shared_pages(self, request: Request) -> int:
        if request.prefix_id < 0 or request.prefix_tokens <= 0:
            return 0
        # Only the whole pages of the prefix are shareable; the partial
        # last page stays private (same split as the accountant).
        return request.prefix_tokens // self.page_tokens

    def commit_pages(self, request: Request) -> int:
        """Unique new pages the request's admission charges."""
        tokens = (
            request.input_tokens if self.optimistic else request.total_tokens
        )
        pages = _pages_for(tokens, self.page_tokens)
        shared = self._shared_pages(request)
        if shared == 0:
            return pages
        first = request.prefix_id not in self.groups
        return (pages - shared) + (shared if first else 0)

    def admit(self, request: Request) -> None:
        tokens = (
            request.input_tokens if self.optimistic else request.total_tokens
        )
        pages = _pages_for(tokens, self.page_tokens)
        shared = self._shared_pages(request)
        self.held[request.request_id] = pages - shared
        if shared > 0:
            group = self.groups.setdefault(request.prefix_id, [shared, 0])
            group[1] += 1
            self.request_group[request.request_id] = request.prefix_id

    def decode(self, request: Request, decode_steps: int) -> None:
        """Grow for decode pass number ``decode_steps`` (1-indexed)."""
        if not self.optimistic:
            return
        # Decode pass k reads KV length input + k and appends its token's
        # entry, so the request must hold pages for input + k tokens —
        # minus its shared-prefix pages, which are held by the group.
        required = _pages_for(
            request.input_tokens + decode_steps, self.page_tokens
        ) - self._shared_pages(request)
        held = self.held.get(request.request_id, 0)
        if required > held:
            self.held[request.request_id] = required

    def release(self, request_id: int) -> int:
        """Drop a reservation; returns the resident pages freed."""
        freed = self.held.pop(request_id, 0)
        self.swapped.pop(request_id, None)
        gid = self.request_group.pop(request_id, None)
        if gid is not None and gid in self.groups:
            group = self.groups[gid]
            group[1] -= 1
            if group[1] <= 0:
                freed += group[0]
                del self.groups[gid]
        return freed

    def swap_out(self, request_id: int) -> int:
        """Move private pages to the host side; returns pages moved."""
        pages = self.held.pop(request_id, 0)
        self.swapped[request_id] = pages
        return pages

    def swap_in(self, request_id: int) -> int:
        """Restore private pages from the host side; returns pages moved."""
        pages = self.swapped.pop(request_id, 0)
        self.held[request_id] = pages
        return pages

    def clear(self) -> None:
        """Drop everything (replica failure)."""
        self.held.clear()
        self.swapped.clear()
        self.groups.clear()
        self.request_group.clear()


def _replay(
    events: Sequence[SimEvent],
    by_id: "dict[int, Request]",
    ledger: "_Ledger | None",
    default_model: "str | None" = None,
) -> "tuple[list[str], dict]":
    """Replay one event log; returns (violations, end-of-log accounting).

    The accounting dict carries what the cross-log checks need: the
    requests still in flight, the per-request admit/preempt/failure-drop
    counts, the completed set, and whether the log opened with a scale-up
    marker.

    ``default_model`` (the simulator's default model name) enables the
    *resident-model* replay for multi-model logs: every prefill/decode
    must belong to the model most recently swapped in, and a
    ``model_swap`` to the already-resident model is a violation (a forged
    insertion; a deleted swap is caught by the step-model mismatch).  The
    replay also auto-enables when the log contains any ``model_swap``
    event, so forged swaps in a single-model log are caught too.
    """
    violations: list[str] = []
    track_models = default_model is not None or any(
        event.kind == "model_swap" for event in events
    )
    resident = default_model or ""

    def _model_of(request: "Request | None") -> str:
        if request is None:
            return resident
        return request.model or default_model or ""
    in_flight: set[int] = set()
    #: In-flight requests whose private pages sit in host DRAM; they keep
    #: their episode progress but must not run until swapped back in.
    swapped: set[int] = set()
    completed: set[int] = set()
    #: Per-episode counters, reset by admit, discarded by preempt.
    prefill_tokens: dict[int, int] = {}
    decode_steps: dict[int, int] = {}
    admit_count: dict[int, int] = {}
    preempt_count: dict[int, int] = {}
    fail_drops: dict[int, int] = {}
    prev_clock = 0.0
    prev_active = 0
    dead = False
    scale_up_first = False

    for index, event in enumerate(events):
        where = f"event {index} ({event.kind} @ {event.clock_s:.6f}s)"
        if event.clock_s < prev_clock - _CLOCK_EPS:
            violations.append(f"{where}: clock moved backwards from {prev_clock:.6f}s")
        if event.kv_reserved_pages > event.kv_total_pages:
            violations.append(
                f"{where}: KV over-subscription — {event.kv_reserved_pages} "
                f"pages committed of {event.kv_total_pages}"
            )
        if dead and event.kind != "recover":
            violations.append(
                f"{where}: event on a failed replica before its recovery"
            )

        if event.kind == "idle":
            if prev_active > 0:
                violations.append(
                    f"{where}: device idled while {prev_active} admitted "
                    "request(s) had runnable passes"
                )
        elif event.kind == "admit":
            if not _close(event.clock_s, prev_clock):
                violations.append(f"{where}: admission consumed device time")
            if event.request_id in in_flight:
                violations.append(f"{where}: request {event.request_id} admitted twice")
            elif event.request_id in completed:
                violations.append(
                    f"{where}: request {event.request_id} admitted after completion"
                )
            elif event.request_id not in by_id:
                violations.append(f"{where}: admitted unknown request {event.request_id}")
            else:
                in_flight.add(event.request_id)
                prefill_tokens[event.request_id] = 0
                decode_steps[event.request_id] = 0
                admit_count[event.request_id] = (
                    admit_count.get(event.request_id, 0) + 1
                )
                if ledger is not None:
                    request = by_id[event.request_id]
                    expected = ledger.commit_pages(request)
                    if event.tokens != expected:
                        violations.append(
                            f"{where}: request {event.request_id} committed "
                            f"{event.tokens} page(s), expected {expected}"
                        )
                    ledger.admit(request)
        elif event.kind == "step":
            if event.latency_s <= 0.0:
                violations.append(f"{where}: step with non-positive latency")
            if event.request_id is None and not event.decode_ids:
                violations.append(f"{where}: step scheduled no work")
            start = event.clock_s - event.latency_s
            if prev_active > 0 and not _close(start, prev_clock):
                violations.append(
                    f"{where}: idle gap of {start - prev_clock:.9f}s while "
                    f"{prev_active} request(s) were in flight"
                )
            if event.request_id is not None:
                if event.request_id not in in_flight:
                    violations.append(
                        f"{where}: prefilled request {event.request_id} "
                        "before admission"
                    )
                elif event.request_id in swapped:
                    violations.append(
                        f"{where}: prefilled request {event.request_id} "
                        "while its pages were swapped out"
                    )
                elif event.tokens < 1:
                    violations.append(f"{where}: prefill chunk of {event.tokens} tokens")
                else:
                    prefill_tokens[event.request_id] += event.tokens
                    request = by_id.get(event.request_id)
                    if (
                        request is not None
                        and prefill_tokens[event.request_id] > request.input_tokens
                    ):
                        violations.append(
                            f"{where}: request {event.request_id} prefilled "
                            f"{prefill_tokens[event.request_id]} tokens of a "
                            f"{request.input_tokens}-token prompt"
                        )
            for decode_id in event.decode_ids:
                if decode_id not in in_flight:
                    violations.append(
                        f"{where}: decoded request {decode_id} before admission"
                    )
                    continue
                if decode_id in swapped:
                    violations.append(
                        f"{where}: decoded request {decode_id} while its "
                        "pages were swapped out"
                    )
                    continue
                request = by_id.get(decode_id)
                if (
                    request is not None
                    and prefill_tokens.get(decode_id, 0) < request.input_tokens
                ):
                    violations.append(
                        f"{where}: decoded request {decode_id} before its "
                        "prefill completed"
                    )
                decode_steps[decode_id] = decode_steps.get(decode_id, 0) + 1
                if ledger is not None and request is not None:
                    ledger.decode(request, decode_steps[decode_id])
            if event.request_id is not None and event.request_id in event.decode_ids:
                violations.append(
                    f"{where}: request {event.request_id} prefilled and "
                    "decoded in the same step"
                )
            if track_models:
                ran = (
                    () if event.request_id is None else (event.request_id,)
                ) + tuple(event.decode_ids)
                for rid in ran:
                    request = by_id.get(rid)
                    model = _model_of(request)
                    if request is not None and model != resident:
                        violations.append(
                            f"{where}: request {rid} targets model "
                            f"{model!r} but {resident!r} was resident"
                        )
        elif event.kind == "preempt":
            if not _close(event.clock_s, prev_clock):
                violations.append(f"{where}: preemption consumed device time")
            if event.request_id not in in_flight:
                violations.append(
                    f"{where}: preempted request {event.request_id} that was "
                    "not in flight"
                )
            else:
                in_flight.discard(event.request_id)
                swapped.discard(event.request_id)
                preempt_count[event.request_id] = (
                    preempt_count.get(event.request_id, 0) + 1
                )
                # The episode's work is discarded: it must be re-done from
                # scratch by a later episode (checked at its completion).
                prefill_tokens.pop(event.request_id, None)
                decode_steps.pop(event.request_id, None)
                if ledger is not None:
                    released = ledger.release(event.request_id)
                    if event.tokens != released:
                        violations.append(
                            f"{where}: preemption of request "
                            f"{event.request_id} released {event.tokens} "
                            f"page(s) but it held {released}"
                        )
        elif event.kind == "swap_out":
            if event.latency_s < 0.0:
                violations.append(f"{where}: swap-out with negative latency")
            start = event.clock_s - event.latency_s
            if prev_active > 0 and not _close(start, prev_clock):
                violations.append(
                    f"{where}: idle gap of {start - prev_clock:.9f}s while "
                    f"{prev_active} request(s) were in flight"
                )
            if event.request_id not in in_flight:
                violations.append(
                    f"{where}: swapped out request {event.request_id} that "
                    "was not in flight"
                )
            elif event.request_id in swapped:
                violations.append(
                    f"{where}: request {event.request_id} swapped out twice"
                )
            else:
                swapped.add(event.request_id)
                # Unlike preemption the episode's progress survives: the
                # prefill/decode counters are deliberately NOT discarded.
                if ledger is not None:
                    moved = ledger.swap_out(event.request_id)
                    if event.tokens != moved:
                        violations.append(
                            f"{where}: swap-out of request "
                            f"{event.request_id} moved {event.tokens} "
                            f"page(s) but it held {moved}"
                        )
        elif event.kind == "swap_in":
            if event.latency_s < 0.0:
                violations.append(f"{where}: swap-in with negative latency")
            start = event.clock_s - event.latency_s
            if prev_active > 0 and not _close(start, prev_clock):
                violations.append(
                    f"{where}: idle gap of {start - prev_clock:.9f}s while "
                    f"{prev_active} request(s) were in flight"
                )
            if event.request_id not in swapped:
                violations.append(
                    f"{where}: swapped in request {event.request_id} that "
                    "was not swapped out"
                )
            else:
                swapped.discard(event.request_id)
                if ledger is not None:
                    moved = ledger.swap_in(event.request_id)
                    if event.tokens != moved:
                        violations.append(
                            f"{where}: swap-in of request "
                            f"{event.request_id} restored {event.tokens} "
                            f"page(s) but its host copy held {moved}"
                        )
        elif event.kind == "complete":
            if not _close(event.clock_s, prev_clock):
                violations.append(f"{where}: completion consumed device time")
            if event.request_id in completed:
                violations.append(f"{where}: request {event.request_id} completed twice")
            elif event.request_id not in in_flight:
                violations.append(
                    f"{where}: request {event.request_id} completed without admission"
                )
            elif event.request_id in swapped:
                violations.append(
                    f"{where}: request {event.request_id} completed while "
                    "its pages were swapped out"
                )
            else:
                in_flight.discard(event.request_id)
                completed.add(event.request_id)
                request = by_id.get(event.request_id)
                if request is not None:
                    done = prefill_tokens.get(event.request_id, 0)
                    if done != request.input_tokens:
                        violations.append(
                            f"request {event.request_id}: prefill chunks sum "
                            f"to {done} tokens, prompt is "
                            f"{request.input_tokens}"
                        )
                    expected = request.output_tokens - 1
                    steps = decode_steps.get(event.request_id, 0)
                    if steps != expected:
                        violations.append(
                            f"request {event.request_id}: {steps} decode "
                            f"steps, expected {expected}"
                        )
                if ledger is not None:
                    ledger.release(event.request_id)
        elif event.kind == "model_swap":
            if event.latency_s < 0.0:
                violations.append(f"{where}: model swap with negative latency")
            start = event.clock_s - event.latency_s
            if prev_active > 0 and not _close(start, prev_clock):
                violations.append(
                    f"{where}: idle gap of {start - prev_clock:.9f}s while "
                    f"{prev_active} request(s) were in flight"
                )
            if event.tokens <= 0:
                violations.append(
                    f"{where}: model swap streamed {event.tokens} weight byte(s)"
                )
            if not event.model:
                violations.append(f"{where}: model swap names no model")
            elif event.model == resident:
                violations.append(
                    f"{where}: model swap to the already-resident model "
                    f"{event.model!r} (a swap must change the active model)"
                )
            else:
                resident = event.model
        elif event.kind == "fail":
            dropped = set(event.decode_ids)
            if dropped != in_flight:
                claimed = ", ".join(str(rid) for rid in sorted(dropped)) or "-"
                held = ", ".join(str(rid) for rid in sorted(in_flight)) or "-"
                violations.append(
                    f"{where}: failure dropped request(s) {claimed} but "
                    f"{held} were in flight"
                )
            if ledger is not None and event.tokens != ledger.reserved:
                violations.append(
                    f"{where}: failure dropped {event.tokens} page(s) but "
                    f"the replica held {ledger.reserved}"
                )
            for rid in in_flight:
                fail_drops[rid] = fail_drops.get(rid, 0) + 1
            in_flight.clear()
            swapped.clear()
            prefill_tokens.clear()
            decode_steps.clear()
            if ledger is not None:
                ledger.clear()
            dead = True
        elif event.kind == "recover":
            if not dead:
                violations.append(
                    f"{where}: recovery without a preceding failure"
                )
            dead = False
        elif event.kind == "scale":
            if event.tokens == 1:
                if index != 0:
                    violations.append(
                        f"{where}: scale-up marker must be the replica's "
                        "first event"
                    )
                else:
                    scale_up_first = True
            elif event.tokens != -1:
                violations.append(
                    f"{where}: scale event must carry +1 (spawn) or "
                    f"-1 (drain), got {event.tokens}"
                )
        else:
            violations.append(f"{where}: unknown event kind {event.kind!r}")

        # The ledger must agree with every reported reservation.  Preempt
        # and swap-out events are exempt from the *equality* check only
        # because growth for earlier batch members interleaves with
        # evictions inside one iteration; the released/moved page count is
        # still verified above, and the very next step event re-pins the
        # full ledger.
        if (
            ledger is not None
            and event.kind not in ("preempt", "swap_out")
            and event.kv_reserved_pages != ledger.reserved
        ):
            violations.append(
                f"{where}: page ledger mismatch — event reports "
                f"{event.kv_reserved_pages} reserved page(s), replay holds "
                f"{ledger.reserved}"
            )
        prev_clock = event.clock_s
        prev_active = event.active

    stats = {
        "in_flight": in_flight,
        "completed": completed,
        "admit_count": admit_count,
        "preempt_count": preempt_count,
        "fail_drops": fail_drops,
        "scale_up_first": scale_up_first,
    }
    return violations, stats


def check_invariants(
    events: Sequence[SimEvent],
    requests: Sequence[Request],
    page_tokens: "int | None" = None,
    admission: "str | None" = None,
    default_model: "str | None" = None,
) -> list[str]:
    """Check the scheduler's invariants; returns violations (empty = sound).

    ``page_tokens`` and ``admission`` (both or neither) additionally enable
    the exact page-ledger replay — pass the simulator's ``page_tokens`` and
    ``admission`` so every reported reservation is re-derived from the
    trace and compared against the log.

    ``default_model`` (the simulator's default model name) enables the
    resident-model replay of multi-model logs; it also auto-enables when
    the log contains a ``model_swap`` event (see :func:`_replay`).
    """
    if (page_tokens is None) != (admission is None):
        raise ValueError("pass page_tokens and admission together (or neither)")
    ledger: "_Ledger | None" = None
    if page_tokens is not None and admission is not None:
        ledger = _Ledger(page_tokens, admission)
    violations: list[str] = []
    by_id = {request.request_id: request for request in requests}
    if len(by_id) != len(requests):
        violations.append("trace contains duplicate request ids")

    replay_violations, stats = _replay(
        events, by_id, ledger, default_model=default_model
    )
    violations.extend(replay_violations)
    completed = stats["completed"]

    for request in requests:
        rid = request.request_id
        if rid not in completed:
            violations.append(f"request {rid} never completed")
            continue
        admits = stats["admit_count"].get(rid, 0)
        preempts = stats["preempt_count"].get(rid, 0)
        if admits != preempts + 1:
            violations.append(
                f"request {rid}: {admits} admission(s) but {preempts} "
                "preemption(s) — every re-admission needs a preemption"
            )
    if stats["in_flight"]:
        leftovers = ", ".join(str(rid) for rid in sorted(stats["in_flight"]))
        violations.append(
            f"request(s) {leftovers} still in flight at the end of the log"
        )
    if len(completed) != len(requests):
        violations.append(
            f"{len(completed)} requests completed, trace has {len(requests)}"
        )
    return violations


def check_cluster_invariants(
    event_logs: "Sequence[Sequence[SimEvent]]",
    requests: Sequence[Request],
    page_tokens: "int | None" = None,
    admission: "str | None" = None,
    initial_replicas: "int | None" = None,
    default_model: "str | None" = None,
) -> list[str]:
    """Check a cluster run with failures/failover/autoscaling; empty = sound.

    Every replica's log is replayed independently against the *full* trace
    (failover legitimately moves a request between replicas, so assignment
    is not fixed), then the global books are balanced:

    - every request of the trace completes **exactly once** across all
      replicas (failover loses nothing, recomputes duplicate nothing);
    - every admission is explained — globally, ``admits == preempts +
      failure drops + 1`` per request, the token-conservation argument
      extended across replica death;
    - a dead replica emits nothing until its ``recover`` event, and a
      failure drops exactly the pages and in-flight requests the replica's
      replayed ledger holds;
    - replicas beyond ``initial_replicas`` (default: all of them) were
      autoscaled into existence and must open their log with the ``scale``
      +1 marker.
    """
    if (page_tokens is None) != (admission is None):
        raise ValueError("pass page_tokens and admission together (or neither)")
    if initial_replicas is None:
        initial_replicas = len(event_logs)
    violations: list[str] = []
    by_id = {request.request_id: request for request in requests}
    if len(by_id) != len(requests):
        violations.append("trace contains duplicate request ids")

    admit_total: dict[int, int] = {}
    preempt_total: dict[int, int] = {}
    drop_total: dict[int, int] = {}
    completions: dict[int, int] = {}
    for replica, events in enumerate(event_logs):
        ledger: "_Ledger | None" = None
        if page_tokens is not None and admission is not None:
            ledger = _Ledger(page_tokens, admission)
        replay_violations, stats = _replay(
            events, by_id, ledger, default_model=default_model
        )
        violations.extend(
            f"replica {replica}: {violation}" for violation in replay_violations
        )
        if stats["in_flight"]:
            leftovers = ", ".join(str(rid) for rid in sorted(stats["in_flight"]))
            violations.append(
                f"replica {replica}: request(s) {leftovers} still in flight "
                "at the end of the log"
            )
        if replica >= initial_replicas and not stats["scale_up_first"]:
            violations.append(
                f"replica {replica}: autoscaled replica's log does not open "
                "with its scale-up marker"
            )
        for rid, count in stats["admit_count"].items():
            admit_total[rid] = admit_total.get(rid, 0) + count
        for rid, count in stats["preempt_count"].items():
            preempt_total[rid] = preempt_total.get(rid, 0) + count
        for rid, count in stats["fail_drops"].items():
            drop_total[rid] = drop_total.get(rid, 0) + count
        for rid in stats["completed"]:
            completions[rid] = completions.get(rid, 0) + 1

    for request in requests:
        rid = request.request_id
        done = completions.get(rid, 0)
        if done == 0:
            violations.append(f"request {rid} never completed")
            continue
        if done > 1:
            violations.append(
                f"request {rid} completed {done} times across replicas"
            )
        admits = admit_total.get(rid, 0)
        preempts = preempt_total.get(rid, 0)
        drops = drop_total.get(rid, 0)
        if admits != preempts + drops + 1:
            violations.append(
                f"request {rid}: {admits} admission(s) but {preempts} "
                f"preemption(s) and {drops} failure drop(s) — every "
                "re-admission needs a preemption or a failure"
            )
    return violations
