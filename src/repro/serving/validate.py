"""Scheduling-invariant checks over the serving simulator's event log.

The simulator can record a :class:`SimEvent` per scheduling decision
(``simulate(..., record_events=True)``).  :func:`check_invariants` replays
that log against the trace and returns a list of human-readable violation
strings — empty when the run was sound.  ``repro serve --validate`` exits
nonzero on violations, so benches and CI can use the checker as a cheap
oracle next to any serving experiment.

The invariants checked (the scheduler's contract):

no KV over-subscription
    At every event, committed KV pages never exceed the pool
    (``kv_reserved_pages <= kv_total_pages``).
work conservation
    The device never idles while an admitted request has a runnable pass:
    an ``idle`` clock jump is only legal when nothing is in flight, and
    every ``step`` must start exactly where the previous event left the
    clock whenever work was in flight.
token conservation
    Per request, prefill chunk tokens sum to exactly the prompt length,
    and decode steps number exactly ``output_tokens - 1`` (the final
    prefill chunk yields the first output token) — and no request decodes
    before its prefill completed.
completion
    Every request of the trace is admitted once, completed once, and the
    completed count equals the trace length.
monotone time
    Event clocks never move backwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.serving.request import Request

__all__ = ["SimEvent", "check_invariants"]

#: Relative slack for floating-point clock comparisons.
_CLOCK_EPS = 1e-9


@dataclass(frozen=True)
class SimEvent:
    """One scheduling event of a simulated trace.

    Kinds
    -----
    ``idle``
        The device had nothing admitted and jumped the clock to the next
        arrival.  ``latency_s`` is 0; legal only with nothing in flight.
    ``admit``
        A request was admitted: its worst-case KV pages were committed
        (``tokens`` is the page count).  Instantaneous.
    ``step``
        One device iteration: a prefill chunk of ``request_id``
        (``tokens`` chunk tokens; ``request_id`` is ``None`` for a pure
        decode iteration) fused with one decode token for each request in
        ``decode_ids``.  ``latency_s`` is the iteration's device time.
    ``complete``
        ``request_id`` finished and released its KV pages.  Instantaneous.

    ``clock_s`` is the simulation time *after* the event; ``active`` and
    ``waiting`` are the in-flight/queued request counts after it.
    """

    kind: str
    clock_s: float
    latency_s: float = 0.0
    request_id: "int | None" = None
    tokens: int = 0
    decode_ids: tuple[int, ...] = ()
    active: int = 0
    waiting: int = 0
    kv_reserved_pages: int = 0
    kv_total_pages: int = 0


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= _CLOCK_EPS * max(1.0, abs(a), abs(b))


def check_invariants(
    events: Sequence[SimEvent], requests: Sequence[Request]
) -> list[str]:
    """Check the scheduler's invariants; returns violations (empty = sound)."""
    violations: list[str] = []
    by_id = {request.request_id: request for request in requests}
    if len(by_id) != len(requests):
        violations.append("trace contains duplicate request ids")

    admitted: set[int] = set()
    completed: set[int] = set()
    prefill_tokens: dict[int, int] = {}
    decode_steps: dict[int, int] = {}
    prev_clock = 0.0
    prev_active = 0

    for index, event in enumerate(events):
        where = f"event {index} ({event.kind} @ {event.clock_s:.6f}s)"
        if event.clock_s < prev_clock - _CLOCK_EPS:
            violations.append(f"{where}: clock moved backwards from {prev_clock:.6f}s")
        if event.kv_reserved_pages > event.kv_total_pages:
            violations.append(
                f"{where}: KV over-subscription — {event.kv_reserved_pages} "
                f"pages committed of {event.kv_total_pages}"
            )

        if event.kind == "idle":
            if prev_active > 0:
                violations.append(
                    f"{where}: device idled while {prev_active} admitted "
                    "request(s) had runnable passes"
                )
        elif event.kind == "admit":
            if not _close(event.clock_s, prev_clock):
                violations.append(f"{where}: admission consumed device time")
            if event.request_id in admitted:
                violations.append(f"{where}: request {event.request_id} admitted twice")
            elif event.request_id not in by_id:
                violations.append(f"{where}: admitted unknown request {event.request_id}")
            else:
                admitted.add(event.request_id)
                prefill_tokens[event.request_id] = 0
                decode_steps[event.request_id] = 0
        elif event.kind == "step":
            if event.latency_s <= 0.0:
                violations.append(f"{where}: step with non-positive latency")
            if event.request_id is None and not event.decode_ids:
                violations.append(f"{where}: step scheduled no work")
            start = event.clock_s - event.latency_s
            if prev_active > 0 and not _close(start, prev_clock):
                violations.append(
                    f"{where}: idle gap of {start - prev_clock:.9f}s while "
                    f"{prev_active} request(s) were in flight"
                )
            if event.request_id is not None:
                if event.request_id not in admitted:
                    violations.append(
                        f"{where}: prefilled request {event.request_id} "
                        "before admission"
                    )
                elif event.tokens < 1:
                    violations.append(f"{where}: prefill chunk of {event.tokens} tokens")
                else:
                    prefill_tokens[event.request_id] += event.tokens
                    request = by_id.get(event.request_id)
                    if (
                        request is not None
                        and prefill_tokens[event.request_id] > request.input_tokens
                    ):
                        violations.append(
                            f"{where}: request {event.request_id} prefilled "
                            f"{prefill_tokens[event.request_id]} tokens of a "
                            f"{request.input_tokens}-token prompt"
                        )
            for decode_id in event.decode_ids:
                if decode_id not in admitted:
                    violations.append(
                        f"{where}: decoded request {decode_id} before admission"
                    )
                    continue
                request = by_id.get(decode_id)
                if (
                    request is not None
                    and prefill_tokens.get(decode_id, 0) < request.input_tokens
                ):
                    violations.append(
                        f"{where}: decoded request {decode_id} before its "
                        "prefill completed"
                    )
                decode_steps[decode_id] = decode_steps.get(decode_id, 0) + 1
            if event.request_id is not None and event.request_id in event.decode_ids:
                violations.append(
                    f"{where}: request {event.request_id} prefilled and "
                    "decoded in the same step"
                )
        elif event.kind == "complete":
            if not _close(event.clock_s, prev_clock):
                violations.append(f"{where}: completion consumed device time")
            if event.request_id in completed:
                violations.append(f"{where}: request {event.request_id} completed twice")
            elif event.request_id not in admitted:
                violations.append(
                    f"{where}: request {event.request_id} completed without admission"
                )
            else:
                completed.add(event.request_id)
        else:
            violations.append(f"{where}: unknown event kind {event.kind!r}")

        prev_clock = event.clock_s
        prev_active = event.active

    for request in requests:
        rid = request.request_id
        if rid not in completed:
            violations.append(f"request {rid} never completed")
            continue
        if prefill_tokens.get(rid, 0) != request.input_tokens:
            violations.append(
                f"request {rid}: prefill chunks sum to "
                f"{prefill_tokens.get(rid, 0)} tokens, prompt is "
                f"{request.input_tokens}"
            )
        expected = request.output_tokens - 1
        if decode_steps.get(rid, 0) != expected:
            violations.append(
                f"request {rid}: {decode_steps.get(rid, 0)} decode steps, "
                f"expected {expected}"
            )
    if len(completed) != len(requests):
        violations.append(
            f"{len(completed)} requests completed, trace has {len(requests)}"
        )
    return violations
