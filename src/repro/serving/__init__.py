"""Request-level serving simulation on top of the unified cost-model layer.

The paper (and the ``figXX`` experiments) evaluate one inference request at
a time.  This package turns the same per-pass cost models into a
*multi-user serving* study: a stream of timed requests shares one device,
and a discrete-event simulator schedules their prefill/decode passes under
a pluggable policy, reporting the metrics LLM-serving work cares about
(TTFT, TPOT, latency percentiles, tokens/s, device utilization).

Layering — who knows what:

:mod:`repro.serving.request`
    :class:`Request` (arrival time + token counts) and the per-request
    :class:`RequestMetrics`.  Knows nothing about backends.
:mod:`repro.serving.trace`
    Deterministic seeded Poisson trace generators over named workload mixes
    (:data:`~repro.serving.trace.TRACES`).  Knows nothing about backends.
:mod:`repro.serving.simulator`
    :class:`ServingSimulator`: schedules token-granularity passes whose
    costs come from *any* :class:`repro.core.costmodel.CostModel` (IANUS,
    NPU-MEM, A100, DFX), with FCFS run-to-completion and interleaved
    continuous-batching policies.  The only layer that touches cost models,
    and only through the protocol.

The ``serving`` experiment (:mod:`repro.experiments.serving_throughput`)
sweeps offered load x backend x policy as a shardable
:class:`~repro.experiments.base.Sweep`, and ``repro serve`` exposes a
single simulation from the command line.
"""

from repro.serving.request import Request, RequestMetrics
from repro.serving.simulator import (
    POLICIES,
    FcfsPolicy,
    InterleavedPolicy,
    PassCostProvider,
    ServingMetrics,
    ServingPolicy,
    ServingSimulator,
    make_policy,
    mean_service_time_s,
    percentile,
)
from repro.serving.trace import TRACES, TraceGenerator, get_trace_generator

__all__ = [
    "Request",
    "RequestMetrics",
    "TraceGenerator",
    "TRACES",
    "get_trace_generator",
    "PassCostProvider",
    "ServingPolicy",
    "FcfsPolicy",
    "InterleavedPolicy",
    "POLICIES",
    "make_policy",
    "ServingMetrics",
    "ServingSimulator",
    "mean_service_time_s",
    "percentile",
]
