"""Request-level serving simulation on top of the unified cost-model layer.

The paper (and the ``figXX`` experiments) evaluate one inference request at
a time.  This package turns the same per-pass cost models into a
*multi-user serving* study: a stream of timed requests shares one device,
and a discrete-event simulator schedules their prefill/decode passes under
a pluggable policy, reporting the metrics LLM-serving work cares about
(TTFT, TPOT, latency percentiles, tokens/s, device utilization, SLO
attainment).

Layering — who knows what:

:mod:`repro.serving.request`
    :class:`Request` (arrival time + token counts + priority class) and the
    per-request :class:`RequestMetrics`.  Knows nothing about backends.
:mod:`repro.serving.trace`
    Deterministic seeded Poisson trace generators over named workload mixes
    (:data:`~repro.serving.trace.TRACES`).  Knows nothing about backends.
:mod:`repro.serving.kv_memory`
    :class:`KvPageAccountant`: paged KV-cache accounting against the bytes
    a backend's memory system holds beyond the model weights.  Reads only
    capacity attributes off a cost model.
:mod:`repro.serving.simulator`
    :class:`ServingSimulator`: schedules token-granularity passes whose
    costs come from *any* :class:`repro.core.costmodel.CostModel` (IANUS,
    NPU-MEM, A100, DFX), with memory-aware admission, optional chunked
    prefill, and FCFS / interleaved / SRPT / priority-class policies.  The
    only layer that touches cost models, and only through the protocol.
:mod:`repro.serving.array_engine` / :mod:`repro.serving.decode_table`
    The *megatrace* engine.  ``ServingSimulator(..., engine="array")``
    swaps the per-request object hot loop for a columnar one (parallel
    state lists, dense :class:`~repro.serving.decode_table.DecodeCostTable`
    pricing, prefix-sum macro-stepping over uneventful decode runs) behind
    the same ``SimulationRun`` API.  ``engine="object"`` (the default)
    remains the reference: with events recorded the array engine is
    bit-identical to it, and macro-stepped pooled metrics agree to 1e-9.
    Pick ``array`` for million-request traces and sweeps; pick ``object``
    when stepping through or debugging individual scheduling decisions.
    :data:`ENGINES` lists the valid names; unknown names raise with that
    list.  ``per_request_detail=False`` additionally pools metrics without
    materializing a ``RequestMetrics`` row per request (single replica
    only), and ``TraceGenerator.generate_stream`` feeds
    ``ServingSimulator.simulate_stream`` arrivals in O(chunk) memory —
    byte-identical to ``generate`` under every trace curve.
:mod:`repro.serving.validate`
    :func:`check_invariants`: replays a recorded event log against the
    trace and reports scheduling-invariant violations (``repro serve
    --validate`` and the invariant test suite use it as an oracle).
    :func:`check_cluster_invariants` extends the replay across replica
    failures, failover and autoscaling.
:mod:`repro.serving.failures`
    Seeded :class:`FailureSchedule` registry: deterministic replica
    deaths and recoveries the cluster applies mid-run.
:mod:`repro.serving.autoscale`
    Causal :class:`Autoscaler` registry plus the modeled
    :func:`replica_warmup_s` a spawned replica pays before serving.

The ``serving`` experiment (:mod:`repro.experiments.serving_throughput`)
sweeps offered load x backend x policy x chunking x KV budget as a
shardable :class:`~repro.experiments.base.Sweep`, and ``repro serve``
exposes a single simulation from the command line.
"""

from repro.serving.autoscale import (
    AUTOSCALERS,
    Autoscaler,
    AutoscalerSignal,
    FixedAutoscaler,
    KvPressureAutoscaler,
    QueueDepthAutoscaler,
    SloAttainmentAutoscaler,
    make_autoscaler,
    replica_warmup_s,
)
from repro.serving.cluster import (
    ROUTERS,
    ClusterMetrics,
    ClusterSimulator,
    KvAwareRouter,
    LeastOutstandingTokensRouter,
    ReplicaSnapshot,
    RoundRobinRouter,
    Router,
    cluster_kv_peak,
    make_router,
)
from repro.serving.failures import (
    FAILURE_SCHEDULES,
    FailureEvent,
    FailureSchedule,
    NoFailures,
    SeededFailures,
    SingleFailure,
    make_failure_schedule,
)
from repro.serving.kv_memory import (
    DEFAULT_KV_BUDGET_BYTES,
    DEFAULT_PAGE_TOKENS,
    KvPageAccountant,
    backend_memory_capacity_bytes,
    kv_budget_bytes,
)
from repro.serving.decode_table import DecodeCostTable, build_decode_table
from repro.serving.request import Request, RequestMetrics
from repro.serving.simulator import (
    ADMISSION_MODES,
    ENGINES,
    POLICIES,
    FcfsPolicy,
    InterleavedPolicy,
    PassCostProvider,
    PriorityPolicy,
    ServingMetrics,
    ServingPolicy,
    ServingSimulator,
    SimulationRun,
    SrptPolicy,
    decode_kv_bounds,
    make_policy,
    mean_service_time_s,
    percentile,
)
from repro.serving.trace import (
    TRACE_CURVES,
    TRACES,
    ConstantCurve,
    DiurnalCurve,
    FlashCrowdCurve,
    StepCurve,
    TraceCurve,
    TraceGenerator,
    get_trace_generator,
    make_trace_curve,
)
from repro.serving.validate import (
    SimEvent,
    check_cluster_invariants,
    check_invariants,
)

__all__ = [
    "Request",
    "RequestMetrics",
    "ClusterMetrics",
    "ClusterSimulator",
    "Router",
    "RoundRobinRouter",
    "LeastOutstandingTokensRouter",
    "KvAwareRouter",
    "ReplicaSnapshot",
    "ROUTERS",
    "make_router",
    "cluster_kv_peak",
    "ADMISSION_MODES",
    "ENGINES",
    "SimulationRun",
    "DecodeCostTable",
    "build_decode_table",
    "decode_kv_bounds",
    "TraceGenerator",
    "TRACES",
    "get_trace_generator",
    "TraceCurve",
    "ConstantCurve",
    "DiurnalCurve",
    "FlashCrowdCurve",
    "StepCurve",
    "TRACE_CURVES",
    "make_trace_curve",
    "FailureEvent",
    "FailureSchedule",
    "NoFailures",
    "SingleFailure",
    "SeededFailures",
    "FAILURE_SCHEDULES",
    "make_failure_schedule",
    "Autoscaler",
    "AutoscalerSignal",
    "FixedAutoscaler",
    "QueueDepthAutoscaler",
    "SloAttainmentAutoscaler",
    "KvPressureAutoscaler",
    "AUTOSCALERS",
    "make_autoscaler",
    "replica_warmup_s",
    "DEFAULT_KV_BUDGET_BYTES",
    "DEFAULT_PAGE_TOKENS",
    "KvPageAccountant",
    "backend_memory_capacity_bytes",
    "kv_budget_bytes",
    "PassCostProvider",
    "ServingPolicy",
    "FcfsPolicy",
    "InterleavedPolicy",
    "SrptPolicy",
    "PriorityPolicy",
    "POLICIES",
    "make_policy",
    "ServingMetrics",
    "ServingSimulator",
    "mean_service_time_s",
    "percentile",
    "SimEvent",
    "check_invariants",
    "check_cluster_invariants",
]
