"""Deterministic seeded trace generators for the serving simulator.

A :class:`TraceGenerator` turns a *workload mix* (a tuple of
:class:`~repro.models.workload.Workload` shapes, sampled uniformly) into a
stream of :class:`~repro.serving.request.Request` objects with Poisson
arrivals.  Determinism is the whole point:

* the RNG is seeded from ``f"{name}/{seed}"`` through :class:`random.Random`,
  which hashes strings with SHA-512 — stable across processes and immune to
  ``PYTHONHASHSEED``, so the same (generator, seed) always yields the same
  trace, in every worker of a sharded sweep;
* inter-arrival gaps are drawn at **unit rate** and divided by the requested
  rate, and the workload-mix draws interleave with the gap draws in a fixed
  order — so sweeping the arrival rate rescales the *same* normalized
  arrival pattern over the *same* request sequence.  A load sweep therefore
  compares like with like: higher load means the identical work arriving
  faster, which is what makes measured throughput–latency curves monotone
  instead of noisy.

The registry :data:`TRACES` names the mixes the experiments (and
``repro serve --trace``) use: the paper's GPT-2 and DFX evaluation grids
plus an interactive chatbot mix and a summarization-only mix.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.models.workload import PAPER_DFX_WORKLOADS, PAPER_GPT2_WORKLOADS, Workload
from repro.serving.request import Request

__all__ = ["TraceGenerator", "TRACES", "get_trace_generator"]


@dataclass(frozen=True)
class TraceGenerator:
    """A named workload mix with Poisson arrivals.

    ``workloads`` is the mix sampled uniformly per request.  ``generate`` is
    pure: identical arguments produce identical traces (see the module
    docstring for how rate sweeps stay comparable).
    """

    name: str
    description: str
    workloads: tuple[Workload, ...]

    def __post_init__(self) -> None:
        if not self.workloads:
            raise ValueError(f"trace generator {self.name!r} needs a non-empty mix")

    # ------------------------------------------------------------------
    def generate(
        self,
        num_requests: int,
        rate_rps: float,
        seed: int = 0,
        start_s: float = 0.0,
        num_classes: int = 1,
    ) -> tuple[Request, ...]:
        """A trace of ``num_requests`` Poisson arrivals at ``rate_rps``.

        ``num_classes`` > 1 additionally assigns each request a uniform
        priority class in ``[0, num_classes)``.  Classes are drawn from a
        *separate* RNG stream (seeded ``f"{name}/{seed}/classes"``), so the
        arrival pattern and workload-mix sequence of a (name, seed) pair
        are identical whether or not classes are requested.
        """
        if num_requests < 0:
            raise ValueError("num_requests must be non-negative")
        if rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if num_classes < 1:
            raise ValueError("num_classes must be at least 1")
        rng = random.Random(f"{self.name}/{seed}")
        class_rng = (
            random.Random(f"{self.name}/{seed}/classes") if num_classes > 1 else None
        )
        requests = []
        clock = start_s
        for request_id in range(num_requests):
            # Unit-rate gap scaled by the rate: the normalized arrival
            # pattern (and the mix sequence below) is identical across rates.
            clock += rng.expovariate(1.0) / rate_rps
            workload = self.workloads[rng.randrange(len(self.workloads))]
            requests.append(
                Request(
                    request_id=request_id,
                    arrival_s=clock,
                    input_tokens=workload.input_tokens,
                    output_tokens=workload.output_tokens,
                    priority_class=(
                        class_rng.randrange(num_classes) if class_rng else 0
                    ),
                )
            )
        return tuple(requests)

    # ------------------------------------------------------------------
    @property
    def max_total_tokens(self) -> int:
        """Largest input+output any request of this mix can reach."""
        return max(workload.total_tokens for workload in self.workloads)

    def describe(self) -> str:
        shapes = ", ".join(workload.label() for workload in self.workloads[:4])
        if len(self.workloads) > 4:
            shapes += f", ... ({len(self.workloads)} shapes)"
        return f"{self.description} [{shapes}]"


#: Named trace generators, in presentation order (``repro list`` prints these).
TRACES: dict[str, TraceGenerator] = {
    generator.name: generator
    for generator in (
        TraceGenerator(
            name="gpt2-paper",
            description="the Fig. 8 GPT-2 evaluation grid as a request mix",
            workloads=tuple(PAPER_GPT2_WORKLOADS),
        ),
        TraceGenerator(
            name="dfx-paper",
            description="the Fig. 9 DFX-comparison grid as a request mix",
            workloads=tuple(PAPER_DFX_WORKLOADS),
        ),
        TraceGenerator(
            name="chatbot",
            description="interactive chat: moderate prompts, mid-length replies",
            workloads=(
                Workload(128, 64),
                Workload(256, 64),
                Workload(256, 128),
                Workload(512, 128),
                Workload(512, 256),
            ),
        ),
        TraceGenerator(
            name="summarize",
            description="summarization-only: long prompts, single-token output",
            workloads=(Workload(128, 1), Workload(256, 1), Workload(512, 1)),
        ),
        TraceGenerator(
            name="skewed",
            description=(
                "heavy-tailed mix: mostly short chats, a tail of long jobs "
                "(stresses request routing across replicas)"
            ),
            # Duplicated shapes weight the uniform draw: 6/10 short,
            # 2/10 medium, 2/10 heavy.  The tail carries ~2/3 of the
            # total tokens, so per-request routing decisions dominate
            # replica load balance.
            workloads=(
                (Workload(64, 16),) * 6
                + (Workload(128, 64),) * 2
                + (Workload(512, 256), Workload(768, 384))
            ),
        ),
    )
}


def get_trace_generator(name: str) -> TraceGenerator:
    """Look up a registered trace generator by name."""
    try:
        return TRACES[name]
    except KeyError:
        raise KeyError(
            f"unknown trace generator {name!r}; known: {', '.join(TRACES)}"
        ) from None
