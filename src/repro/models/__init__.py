"""Model zoo, workloads, and analytical FLOP accounting."""

from repro.models.flops import (
    BlockFlops,
    block_flops,
    fc_flops,
    fc_weight_bytes,
    stage_flops,
    workload_flops,
)
from repro.models.transformer import (
    ALL_MODELS,
    BERT_CONFIGS,
    GEMMA_CONFIGS,
    GPT2_CONFIGS,
    LARGE_GPT_CONFIGS,
    ModelConfig,
    ModelFamily,
    get_model,
    tiny_gpt,
)
from repro.models.workload import (
    PAPER_BERT_INPUT_SIZES,
    PAPER_DFX_WORKLOADS,
    PAPER_GPT2_WORKLOADS,
    PAPER_SCALABILITY_WORKLOADS,
    Stage,
    StagePass,
    Workload,
)

__all__ = [
    "ALL_MODELS",
    "BERT_CONFIGS",
    "GEMMA_CONFIGS",
    "GPT2_CONFIGS",
    "LARGE_GPT_CONFIGS",
    "ModelConfig",
    "ModelFamily",
    "get_model",
    "tiny_gpt",
    "Stage",
    "StagePass",
    "Workload",
    "PAPER_BERT_INPUT_SIZES",
    "PAPER_DFX_WORKLOADS",
    "PAPER_GPT2_WORKLOADS",
    "PAPER_SCALABILITY_WORKLOADS",
    "BlockFlops",
    "block_flops",
    "fc_flops",
    "fc_weight_bytes",
    "stage_flops",
    "workload_flops",
]
