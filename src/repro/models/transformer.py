"""Transformer model configurations evaluated in the paper.

Tables 3 and 4 of the paper define the BERT, GPT-2 and larger GPT variants
used throughout the evaluation.  :class:`ModelConfig` captures those
architectural parameters together with the derived quantities the rest of the
library needs: per-block parameter counts, the fraction of parameters that
belong to fully-connected layers (the data shared between NPU and PIM that
motivates the unified memory system), and KV-cache sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.config import BYTES_PER_ELEMENT

__all__ = [
    "ModelFamily",
    "ModelConfig",
    "GPT2_CONFIGS",
    "BERT_CONFIGS",
    "LARGE_GPT_CONFIGS",
    "GEMMA_CONFIGS",
    "ALL_MODELS",
    "get_model",
]


class ModelFamily(str, Enum):
    """Transformer family: decoder-only (GPT) or encoder-only (BERT)."""

    GPT = "gpt"
    BERT = "bert"


@dataclass(frozen=True)
class ModelConfig:
    """Architecture of one transformer model (Table 3 / Table 4).

    Parameters
    ----------
    name:
        Human readable identifier, e.g. ``"gpt2-xl"``.
    family:
        :class:`ModelFamily` — decoder blocks with causal attention and a
        generation stage (GPT), or encoder blocks only (BERT).
    embedding_dim:
        Model (hidden) dimension.
    head_dim:
        Dimension of one attention head.
    num_heads:
        Number of attention heads.  ``num_heads * head_dim`` equals
        ``embedding_dim`` for every model in the paper (the GPT-2 XL variant
        uses 24 heads instead of 25, following DFX, to optimise parallelism).
    num_blocks:
        Number of encoder/decoder blocks.
    vocab_size:
        Vocabulary used by the embedding table and LM head.
    ffn_expansion:
        Width multiplier of the feed-forward network (4 for every model).
    num_kv_heads:
        Key/value heads for grouped-query attention (GQA).  ``None`` (the
        default) means multi-head attention: one KV head per query head.
        Fewer KV heads shrink the K/V projections and the per-token KV
        cache; query heads share KV groups, so attention math per query
        is unchanged.
    gated_mlp:
        ``True`` models a SiLU-gated FFN (gate, up and down projections —
        three matrices instead of two, plus the elementwise gate).
    position_embedding:
        ``"learned"`` (a trained position table next to the token
        embedding) or ``"rope"`` (rotary embeddings — no table, a small
        per-pass rotation of Q and K instead).
    """

    name: str
    family: ModelFamily
    embedding_dim: int
    head_dim: int
    num_heads: int
    num_blocks: int
    vocab_size: int = 50257
    ffn_expansion: int = 4
    max_sequence_length: int = 2048
    workload: str = "language-modeling"
    num_kv_heads: "int | None" = None
    gated_mlp: bool = False
    position_embedding: str = "learned"

    def __post_init__(self) -> None:
        if self.embedding_dim <= 0 or self.num_blocks <= 0:
            raise ValueError(f"{self.name}: dimensions must be positive")
        if self.num_heads * self.head_dim != self.embedding_dim:
            raise ValueError(
                f"{self.name}: num_heads * head_dim "
                f"({self.num_heads} * {self.head_dim}) must equal "
                f"embedding_dim ({self.embedding_dim})"
            )
        if self.num_kv_heads is not None:
            if not 1 <= self.num_kv_heads <= self.num_heads:
                raise ValueError(
                    f"{self.name}: num_kv_heads ({self.num_kv_heads}) must "
                    f"be in [1, num_heads={self.num_heads}]"
                )
            if self.num_heads % self.num_kv_heads != 0:
                raise ValueError(
                    f"{self.name}: num_kv_heads ({self.num_kv_heads}) must "
                    f"divide num_heads ({self.num_heads}) evenly"
                )
        if self.position_embedding not in ("learned", "rope"):
            raise ValueError(
                f"{self.name}: position_embedding must be 'learned' or "
                f"'rope', got {self.position_embedding!r}"
            )

    # ------------------------------------------------------------------
    # Per-block parameter counts
    # ------------------------------------------------------------------
    @property
    def ffn_dim(self) -> int:
        return self.embedding_dim * self.ffn_expansion

    @property
    def kv_heads(self) -> int:
        """Key/value heads: ``num_kv_heads`` under GQA, else ``num_heads``."""
        return self.num_kv_heads if self.num_kv_heads is not None else self.num_heads

    @property
    def kv_dim(self) -> int:
        """Width of the K (and V) projection output."""
        return self.kv_heads * self.head_dim

    @property
    def qkv_params_per_block(self) -> int:
        """Parameters of the Q, K and V projection matrices of one block."""
        return self.embedding_dim * (self.embedding_dim + 2 * self.kv_dim)

    @property
    def attention_output_params_per_block(self) -> int:
        """Parameters of the attention output (projection) FC of one block."""
        return self.embedding_dim * self.embedding_dim

    @property
    def ffn_params_per_block(self) -> int:
        """Parameters of the FFN matrices of one block (three when gated)."""
        matrices = 3 if self.gated_mlp else 2
        return matrices * self.embedding_dim * self.ffn_dim

    @property
    def fc_params_per_block(self) -> int:
        """All FC parameters of one block (shared between NPU and PIM)."""
        return (
            self.qkv_params_per_block
            + self.attention_output_params_per_block
            + self.ffn_params_per_block
        )

    @property
    def norm_params_per_block(self) -> int:
        """Layer-normalisation scale/shift parameters of one block."""
        return 4 * self.embedding_dim

    @property
    def block_params(self) -> int:
        return self.fc_params_per_block + self.norm_params_per_block

    # ------------------------------------------------------------------
    # Whole-model parameter counts
    # ------------------------------------------------------------------
    @property
    def embedding_params(self) -> int:
        """Token embedding plus (learned) position embedding parameters.

        Rotary position embeddings have no trained table: only the token
        embedding counts.
        """
        positions = (
            0 if self.position_embedding == "rope" else self.max_sequence_length
        )
        return (self.vocab_size + positions) * self.embedding_dim

    @property
    def lm_head_params(self) -> int:
        """LM-head parameters (weight-tied with the token embedding)."""
        return self.vocab_size * self.embedding_dim

    @property
    def num_params(self) -> int:
        """Total parameter count of the model."""
        return self.embedding_params + self.num_blocks * self.block_params

    @property
    def fc_params(self) -> int:
        """Parameters used by matrix-matrix *and* matrix-vector FC layers.

        These are the parameters that must be shared between the NPU and the
        PIM; the paper reports that they make up about 91% of GPT-2's
        parameters (Sec. 3.2).
        """
        return self.num_blocks * self.fc_params_per_block + self.lm_head_params

    @property
    def fc_param_fraction(self) -> float:
        return self.fc_params / (self.num_params + self.lm_head_params)

    @property
    def param_bytes(self) -> int:
        """Total model footprint in bytes at BF16."""
        return self.num_params * BYTES_PER_ELEMENT

    @property
    def fc_param_bytes(self) -> int:
        return self.fc_params * BYTES_PER_ELEMENT

    # ------------------------------------------------------------------
    # Activations / KV cache
    # ------------------------------------------------------------------
    @property
    def kv_bytes_per_token_per_block(self) -> int:
        """Bytes added to the KV cache per generated token per block.

        GQA stores one K and one V entry per *KV* head, so fewer KV heads
        mean a proportionally smaller cache.
        """
        return 2 * self.kv_dim * BYTES_PER_ELEMENT

    def kv_cache_bytes(self, sequence_length: int) -> int:
        """Total KV-cache footprint for a given context length."""
        return self.num_blocks * sequence_length * self.kv_bytes_per_token_per_block

    def memory_footprint_bytes(self, sequence_length: int) -> int:
        """Model parameters plus KV cache for a given context length."""
        return self.param_bytes + self.kv_cache_bytes(sequence_length)

    @property
    def is_decoder(self) -> bool:
        return self.family is ModelFamily.GPT

    def describe(self) -> str:
        """Single-line human readable description used in reports."""
        heads = f"heads={self.num_heads}x{self.head_dim}"
        if self.kv_heads != self.num_heads:
            heads += f" (kv={self.kv_heads})"
        extras = "".join(
            f", {note}"
            for note, active in (
                ("gated-mlp", self.gated_mlp),
                ("rope", self.position_embedding == "rope"),
            )
            if active
        )
        return (
            f"{self.name}: d={self.embedding_dim}, {heads}, "
            f"blocks={self.num_blocks}, "
            f"params={self.num_params / 1e6:.0f}M{extras}"
        )


def _gpt(name: str, dim: int, head_dim: int, heads: int, blocks: int) -> ModelConfig:
    return ModelConfig(
        name=name,
        family=ModelFamily.GPT,
        embedding_dim=dim,
        head_dim=head_dim,
        num_heads=heads,
        num_blocks=blocks,
        workload="language-modeling",
    )


def _bert(name: str, dim: int, head_dim: int, heads: int, blocks: int) -> ModelConfig:
    return ModelConfig(
        name=name,
        family=ModelFamily.BERT,
        embedding_dim=dim,
        head_dim=head_dim,
        num_heads=heads,
        num_blocks=blocks,
        vocab_size=30522,
        max_sequence_length=512,
        workload="question-answering",
    )


#: GPT-2 configurations of Table 3.  The XL variant uses 24 heads (instead of
#: 25) following DFX, as noted in Sec. 6.1.
GPT2_CONFIGS: dict[str, ModelConfig] = {
    "m": _gpt("gpt2-m", 1024, 64, 16, 24),
    "l": _gpt("gpt2-l", 1280, 64, 20, 36),
    "xl": _gpt("gpt2-xl", 1536, 64, 24, 48),
    "2.5b": _gpt("gpt2-2.5b", 1920, 96, 20, 54),
}

#: BERT configurations of Table 3.
BERT_CONFIGS: dict[str, ModelConfig] = {
    "base": _bert("bert-base", 768, 64, 12, 12),
    "large": _bert("bert-large", 1024, 64, 16, 24),
    "1.3b": _bert("bert-1.3b", 2048, 64, 32, 24),
    "3.9b": _bert("bert-3.9b", 2560, 64, 40, 48),
}

#: Larger GPT configurations of Table 4 (scalability analysis, Sec. 7.1).
LARGE_GPT_CONFIGS: dict[str, ModelConfig] = {
    "6.7b": _gpt("gpt-6.7b", 4096, 128, 32, 32),
    "13b": _gpt("gpt-13b", 5120, 128, 40, 40),
    "30b": _gpt("gpt-30b", 7168, 128, 56, 48),
}

#: Modern decoder variants (beyond the paper): grouped-query attention,
#: SiLU-gated MLPs and rotary position embeddings, the operator set of the
#: related npu_model program library (Gemma-style attention, RoPE,
#: SiLU-gate).  They make a co-hosted model set architecturally
#: heterogeneous — different parameter footprints *and* different KV bytes
#: per token.
GEMMA_CONFIGS: dict[str, ModelConfig] = {
    "1b": ModelConfig(
        name="gemma-1b",
        family=ModelFamily.GPT,
        embedding_dim=1536,
        head_dim=128,
        num_heads=12,
        num_blocks=24,
        vocab_size=32768,
        num_kv_heads=4,
        gated_mlp=True,
        position_embedding="rope",
        workload="language-modeling",
    ),
    "2b": ModelConfig(
        name="gemma-2b",
        family=ModelFamily.GPT,
        embedding_dim=2048,
        head_dim=128,
        num_heads=16,
        num_blocks=26,
        vocab_size=32768,
        ffn_expansion=6,
        num_kv_heads=4,
        gated_mlp=True,
        position_embedding="rope",
        workload="language-modeling",
    ),
}

ALL_MODELS: dict[str, ModelConfig] = {
    **{f"gpt2-{k}": v for k, v in GPT2_CONFIGS.items()},
    **{f"bert-{k}": v for k, v in BERT_CONFIGS.items()},
    **{f"gpt-{k}": v for k, v in LARGE_GPT_CONFIGS.items()},
    **{f"gemma-{k}": v for k, v in GEMMA_CONFIGS.items()},
}


def get_model(name: str) -> ModelConfig:
    """Look a model up by its canonical name or family alias.

    Accepts either the ``ModelConfig.name`` (``"gpt2-xl"``) or the registry
    key (``"gpt2-xl"``, ``"bert-base"``, ``"gpt-13b"``).
    """
    if name in ALL_MODELS:
        return ALL_MODELS[name]
    for model in ALL_MODELS.values():
        if model.name == name:
            return model
    raise KeyError(f"unknown model {name!r}; known models: {sorted(ALL_MODELS)}")


def tiny_gpt(
    embedding_dim: int = 64,
    head_dim: int = 16,
    num_heads: int = 4,
    num_blocks: int = 2,
    vocab_size: int = 128,
    name: str = "gpt-tiny",
) -> ModelConfig:
    """A tiny GPT configuration used by the functional-simulation tests."""
    return ModelConfig(
        name=name,
        family=ModelFamily.GPT,
        embedding_dim=embedding_dim,
        head_dim=head_dim,
        num_heads=num_heads,
        num_blocks=num_blocks,
        vocab_size=vocab_size,
        max_sequence_length=256,
    )
