"""Analytical FLOP and byte accounting for transformer inference.

These helpers are used in three places:

* the adaptive FC mapping algorithm (Algorithm 1) needs FLOPs/bytes per FC;
* the GPU and DFX baselines are roofline models driven by per-operator FLOPs
  and bytes;
* the throughput/utilisation metrics of Fig. 14 divide end-to-end FLOPs by
  measured latency.

Conventions: a matrix multiplication of an ``[n, k]`` activation with a
``[k, m]`` weight costs ``2*n*k*m`` FLOPs; element-wise/vector operators cost
a small constant number of FLOPs per element (the paper notes they are less
than 0.06% of total FLOPs but a sizeable latency fraction, Fig. 2a).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import BYTES_PER_ELEMENT
from repro.models.transformer import ModelConfig
from repro.models.workload import Stage, StagePass, Workload

__all__ = [
    "fc_flops",
    "fc_weight_bytes",
    "fc_activation_bytes",
    "attention_score_flops",
    "attention_context_flops",
    "softmax_flops",
    "layernorm_flops",
    "gelu_flops",
    "residual_add_flops",
    "BlockFlops",
    "block_flops",
    "stage_flops",
    "workload_flops",
    "model_weight_bytes",
    "FLOPS_PER_SOFTMAX_ELEMENT",
    "FLOPS_PER_LAYERNORM_ELEMENT",
    "FLOPS_PER_GELU_ELEMENT",
    "FLOPS_PER_ROPE_ELEMENT",
]

#: Exponentiate, subtract max, accumulate, divide — per score element.
FLOPS_PER_SOFTMAX_ELEMENT = 5
#: Two reduction passes plus the normalisation itself — per element.
FLOPS_PER_LAYERNORM_ELEMENT = 7
#: LUT lookup plus linear interpolation — per element.
FLOPS_PER_GELU_ELEMENT = 4
#: Rotary embedding: two multiplies and an add per rotated element.
FLOPS_PER_ROPE_ELEMENT = 3


def fc_flops(num_tokens: int, d_in: int, d_out: int) -> float:
    """FLOPs of a fully-connected layer applied to ``num_tokens`` tokens."""
    return 2.0 * num_tokens * d_in * d_out


def fc_weight_bytes(d_in: int, d_out: int) -> int:
    """Weight bytes that must be read for one FC layer."""
    return d_in * d_out * BYTES_PER_ELEMENT


def fc_activation_bytes(num_tokens: int, d_in: int, d_out: int) -> int:
    """Activation bytes read and written by one FC layer."""
    return num_tokens * (d_in + d_out) * BYTES_PER_ELEMENT


def attention_score_flops(num_tokens: int, kv_length: int, head_dim: int) -> float:
    """FLOPs of the QK^T product for one attention head."""
    return 2.0 * num_tokens * kv_length * head_dim


def attention_context_flops(num_tokens: int, kv_length: int, head_dim: int) -> float:
    """FLOPs of the SV product for one attention head."""
    return 2.0 * num_tokens * kv_length * head_dim


def softmax_flops(num_tokens: int, kv_length: int) -> float:
    return FLOPS_PER_SOFTMAX_ELEMENT * num_tokens * kv_length


def layernorm_flops(num_tokens: int, dim: int) -> float:
    return FLOPS_PER_LAYERNORM_ELEMENT * num_tokens * dim


def gelu_flops(num_tokens: int, dim: int) -> float:
    return FLOPS_PER_GELU_ELEMENT * num_tokens * dim


def residual_add_flops(num_tokens: int, dim: int) -> float:
    return float(num_tokens * dim)


@dataclass(frozen=True)
class BlockFlops:
    """FLOP breakdown of one transformer block for one pass."""

    qkv: float
    attention_scores: float
    attention_context: float
    attention_output: float
    ffn: float
    softmax: float
    layernorm: float
    gelu: float
    residual: float
    rope: float = 0.0

    @property
    def fc_total(self) -> float:
        """FLOPs executed by fully-connected layers (matrix-unit or PIM)."""
        return self.qkv + self.attention_output + self.ffn

    @property
    def attention_total(self) -> float:
        return self.attention_scores + self.attention_context + self.softmax

    @property
    def vector_total(self) -> float:
        return self.layernorm + self.gelu + self.residual + self.rope

    @property
    def total(self) -> float:
        return self.fc_total + self.attention_total + self.vector_total


def block_flops(model: ModelConfig, num_tokens: int, kv_length: int) -> BlockFlops:
    """FLOP breakdown of one block processing ``num_tokens`` new tokens.

    Grouped-query attention shrinks only the K/V *projections* (and the KV
    cache, accounted elsewhere): every query head still attends the full
    ``kv_length``, so the score/context/softmax terms keep ``num_heads``
    factors.  A gated MLP adds the third (gate) matrix and the elementwise
    gate multiply; rotary embeddings rotate the fresh Q and K rows.
    """
    d = model.embedding_dim
    d_ff = model.ffn_dim
    h = model.num_heads
    hd = model.head_dim
    kv_d = model.kv_dim
    if model.gated_mlp:
        ffn = (
            2 * fc_flops(num_tokens, d, d_ff)  # gate and up projections
            + fc_flops(num_tokens, d_ff, d)
        )
        activation = gelu_flops(num_tokens, d_ff) + float(num_tokens * d_ff)
    else:
        ffn = fc_flops(num_tokens, d, d_ff) + fc_flops(num_tokens, d_ff, d)
        activation = gelu_flops(num_tokens, d_ff)
    rope = 0.0
    if model.position_embedding == "rope":
        rope = FLOPS_PER_ROPE_ELEMENT * num_tokens * (d + kv_d)
    return BlockFlops(
        qkv=fc_flops(num_tokens, d, d + 2 * kv_d),
        attention_scores=h * attention_score_flops(num_tokens, kv_length, hd),
        attention_context=h * attention_context_flops(num_tokens, kv_length, hd),
        attention_output=fc_flops(num_tokens, d, d),
        ffn=ffn,
        softmax=h * softmax_flops(num_tokens, kv_length),
        layernorm=2 * layernorm_flops(num_tokens, d),
        gelu=activation,
        residual=2 * residual_add_flops(num_tokens, d),
        rope=rope,
    )


def lm_head_flops(model: ModelConfig, num_tokens: int = 1) -> float:
    """FLOPs of the LM head (only the last token needs logits)."""
    return fc_flops(num_tokens, model.embedding_dim, model.vocab_size)


def stage_flops(model: ModelConfig, stage_pass: StagePass) -> float:
    """Total model FLOPs for one pass (all blocks plus the LM head)."""
    per_block = block_flops(model, stage_pass.num_tokens, stage_pass.kv_length)
    total = model.num_blocks * per_block.total
    if model.is_decoder:
        total += lm_head_flops(model)
    return total


def workload_flops(model: ModelConfig, workload: Workload) -> float:
    """Total FLOPs of an end-to-end inference request."""
    return sum(stage_flops(model, p) for p in workload.stages())


def stage_weight_bytes(model: ModelConfig, stage: Stage) -> int:
    """Weight bytes that one full pass must read (all blocks + LM head)."""
    per_block = model.fc_params_per_block * BYTES_PER_ELEMENT
    total = model.num_blocks * per_block
    if model.is_decoder:
        total += model.lm_head_params * BYTES_PER_ELEMENT
    del stage  # the same weights are read in both stages
    return total


def model_weight_bytes(model: ModelConfig) -> int:
    """Bytes streamed when a replica swaps ``model`` in as its active model.

    A weight swap must move the *whole* parameter footprint — embeddings
    and norms included, not just the FC weights a single pass reads — so
    this is the model's total parameter footprint at BF16.
    """
    return model.param_bytes
