"""Inference workloads: input/output token configurations and stages.

The paper evaluates end-to-end inference as a *summarization* stage that
processes all input tokens at once, followed by a *generation* stage that
produces output tokens one at a time (Sec. 2.1).  A :class:`Workload` captures
the (input size, output size) pairs swept in Figs. 8, 9, 13 and 17, and
expands into the sequence of :class:`StagePass` objects that the system model
simulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator

__all__ = [
    "Stage",
    "StagePass",
    "Workload",
    "PAPER_GPT2_WORKLOADS",
    "PAPER_DFX_WORKLOADS",
    "PAPER_BERT_INPUT_SIZES",
    "PAPER_SCALABILITY_WORKLOADS",
]


class Stage(str, Enum):
    """Inference stage."""

    SUMMARIZATION = "summarization"
    GENERATION = "generation"


@dataclass(frozen=True)
class StagePass:
    """One pass through the model.

    Attributes
    ----------
    stage:
        Which stage this pass belongs to.
    num_tokens:
        Number of tokens processed in this pass (all input tokens for the
        summarization pass, exactly one for each generation pass).
    kv_length:
        Number of tokens in the attention context *after* this pass, i.e. the
        length of the concatenated key/value tensors used by self-attention.
    token_index:
        Index of the generated token (0-based) for generation passes; ``None``
        for the summarization pass.
    """

    stage: Stage
    num_tokens: int
    kv_length: int
    token_index: int | None = None


@dataclass(frozen=True)
class Workload:
    """An inference request: ``input_tokens`` in, ``output_tokens`` out.

    The paper evaluates batch size 1 throughout (Sec. 6.1) because datacenter
    NLP services prefer non-batched requests; larger batch sizes are accepted
    here for completeness and simply scale token counts.
    """

    input_tokens: int
    output_tokens: int = 1
    batch_size: int = 1

    def __post_init__(self) -> None:
        if self.input_tokens <= 0:
            raise ValueError("input_tokens must be positive")
        if self.output_tokens < 0:
            raise ValueError("output_tokens must be non-negative")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")

    @property
    def total_tokens(self) -> int:
        return self.input_tokens + self.output_tokens

    @property
    def num_generation_passes(self) -> int:
        """Generation passes needed after the summarization pass.

        The summarization pass already produces the first output token, so a
        request for ``N`` output tokens performs ``N - 1`` generation passes
        (and none when only one output token is requested, matching the
        "(input, 1)" summarization-only configurations in the paper).
        """
        return max(0, self.output_tokens - 1)

    def stages(self) -> Iterator[StagePass]:
        """Expand the workload into its per-pass structure."""
        yield StagePass(
            stage=Stage.SUMMARIZATION,
            num_tokens=self.input_tokens,
            kv_length=self.input_tokens,
        )
        for i in range(self.num_generation_passes):
            yield StagePass(
                stage=Stage.GENERATION,
                num_tokens=1,
                kv_length=self.input_tokens + i + 1,
                token_index=i,
            )

    def generation_kv_lengths(self) -> list[int]:
        """KV lengths seen by each generation pass, in order."""
        return [
            self.input_tokens + i + 1 for i in range(self.num_generation_passes)
        ]

    def label(self) -> str:
        """Workload label in the paper's ``(input, output)`` notation."""
        return f"({self.input_tokens},{self.output_tokens})"


#: The (input, output) sweep of Fig. 8: inputs 128/256/512, outputs 1/8/64/512.
PAPER_GPT2_WORKLOADS: list[Workload] = [
    Workload(input_tokens=i, output_tokens=o)
    for i in (128, 256, 512)
    for o in (1, 8, 64, 512)
]

#: The (input, output) sweep of Fig. 9 (taken from the DFX paper).
PAPER_DFX_WORKLOADS: list[Workload] = [
    Workload(input_tokens=i, output_tokens=o)
    for i in (32, 64, 128)
    for o in (1, 16, 256)
]

#: BERT input sizes of Fig. 14 (summarization-only workloads).
PAPER_BERT_INPUT_SIZES: list[int] = [128, 256, 512]

#: The (input, output) sweep of Fig. 17 (scalability analysis).
PAPER_SCALABILITY_WORKLOADS: list[Workload] = [
    Workload(input_tokens=256, output_tokens=o) for o in (1, 8, 64, 512)
]
