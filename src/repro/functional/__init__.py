"""Functional (numerical) simulation of the IANUS dataflow."""

from repro.functional.npu_functional import (
    MatrixUnitFunctional,
    VectorUnitFunctional,
    onchip_transpose,
)
from repro.functional.pim_functional import PimFunctionalDevice
from repro.functional.reference import (
    ReferenceTransformer,
    TransformerWeights,
    gelu,
    layer_norm,
    softmax,
)
from repro.functional.tensors import BF16_EPSILON, bf16_error, bf16_matmul, to_bf16
from repro.functional.verify import (
    FunctionalComparison,
    IanusFunctionalBackend,
    compare_backends,
)

__all__ = [
    "MatrixUnitFunctional",
    "VectorUnitFunctional",
    "onchip_transpose",
    "PimFunctionalDevice",
    "ReferenceTransformer",
    "TransformerWeights",
    "gelu",
    "layer_norm",
    "softmax",
    "BF16_EPSILON",
    "bf16_error",
    "bf16_matmul",
    "to_bf16",
    "FunctionalComparison",
    "IanusFunctionalBackend",
    "compare_backends",
]
