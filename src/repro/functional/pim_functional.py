"""Functional model of the PIM GEMV dataflow.

This module stores a weight matrix in the bank/row layout of Fig. 4 (via
:class:`repro.pim.address_mapping.TileMapping`), broadcasts input-vector
segments into the per-channel global buffers, and executes the matrix-vector
product exactly the way the bank processing units do: per tile, every bank
multiplies its 1024-element row chunk against the matching global-buffer
segment in ``elements_per_mac``-wide MAC commands and accumulates in FP32.

Running the GEMV this way and getting the same answer as ``weights @ x`` is
the functional-correctness property the FPGA prototype demonstrates; the
property-based tests exercise it across matrix shapes, including the ragged
tiles of models whose dimensions are not multiples of 1024.
"""

from __future__ import annotations

import numpy as np

from repro.config import PimConfig
from repro.functional.tensors import to_bf16
from repro.pim.address_mapping import TileMapping
from repro.pim.global_buffer import GlobalBuffer
from repro.pim.processing_unit import gelu_lookup_table, gelu_via_lut

__all__ = ["PimFunctionalDevice"]


class PimFunctionalDevice:
    """Bank-level functional execution of PIM matrix-vector products."""

    def __init__(self, config: PimConfig | None = None, compute_channels: int | None = None) -> None:
        self.config = config or PimConfig()
        self.compute_channels = compute_channels or self.config.channels
        self.global_buffers = [GlobalBuffer(self.config) for _ in range(self.compute_channels)]
        self._gelu_table = gelu_lookup_table()
        #: bank storage: {(channel, bank): {row_address: row_data}}
        self._banks: dict[tuple[int, int], dict[int, np.ndarray]] = {}
        self._layouts: dict[str, TileMapping] = {}
        self._shapes: dict[str, tuple[int, int]] = {}

    # ------------------------------------------------------------------
    # Weight placement (Fig. 4 / Fig. 5)
    # ------------------------------------------------------------------
    def store_weight(self, name: str, weights: np.ndarray) -> TileMapping:
        """Store a ``[out_features, in_features]`` weight matrix into the banks."""
        weights = to_bf16(np.asarray(weights, dtype=np.float32))
        out_features, in_features = weights.shape
        mapping = TileMapping(
            self.config, out_features, in_features, compute_channels=self.compute_channels
        )
        self._layouts[name] = mapping
        self._shapes[name] = (out_features, in_features)
        row_elements = self.config.row_elements
        for tile in mapping.tiles():
            for local_row in range(tile.used_rows):
                matrix_row = tile.row_start + local_row
                channel, bank = mapping.bank_coordinates(matrix_row)
                row_data = np.zeros(row_elements, dtype=np.float32)
                chunk = weights[matrix_row, tile.col_start : tile.col_start + tile.used_cols]
                row_data[: tile.used_cols] = chunk
                bank_rows = self._banks.setdefault((channel, bank), {})
                # The tile index is the DRAM row address (Fig. 5): the name
                # spaces of different layers are kept separate per layer name.
                bank_rows[(name, tile.row_address)] = row_data
        return mapping

    def stored_bytes(self, name: str) -> int:
        """DRAM bytes reserved for one stored weight matrix (with padding)."""
        return self._layouts[name].storage_bytes()

    # ------------------------------------------------------------------
    # Matrix-vector execution
    # ------------------------------------------------------------------
    def gemv(self, name: str, x: np.ndarray, fused_gelu: bool = False) -> np.ndarray:
        """Compute ``W x`` for a stored weight matrix using the PIM dataflow."""
        if name not in self._layouts:
            raise KeyError(f"no weight matrix named {name!r} stored in the PIM")
        mapping = self._layouts[name]
        out_features, in_features = self._shapes[name]
        x = to_bf16(np.asarray(x, dtype=np.float32)).reshape(-1)
        if x.shape[0] != in_features:
            raise ValueError(
                f"input vector has {x.shape[0]} elements, expected {in_features}"
            )

        accumulators = np.zeros(out_features, dtype=np.float32)
        elements_per_mac = self.config.elements_per_mac
        for tile in mapping.tiles():
            segment = x[tile.col_start : tile.col_start + tile.used_cols]
            # Broadcast the input segment to every participating channel's
            # global buffer (a single WR_GB micro command per tile).
            for buffer in self.global_buffers:
                buffer.write(segment)
            for local_row in range(tile.used_rows):
                matrix_row = tile.row_start + local_row
                channel, bank = mapping.bank_coordinates(matrix_row)
                row_data = self._banks[(channel, bank)][(name, tile.row_address)]
                buffer = self.global_buffers[channel]
                accumulator = 0.0
                for start in range(0, tile.used_cols, elements_per_mac):
                    count = min(elements_per_mac, tile.used_cols - start)
                    weights_chunk = row_data[start : start + count]
                    inputs_chunk = buffer.read(start, count)
                    accumulator += float(
                        np.dot(weights_chunk.astype(np.float32), inputs_chunk.astype(np.float32))
                    )
                accumulators[matrix_row] += accumulator

        if fused_gelu:
            accumulators = gelu_via_lut(accumulators, self._gelu_table)
        return to_bf16(accumulators)

    def gemm_as_repeated_gemv(self, name: str, xs: np.ndarray, fused_gelu: bool = False) -> np.ndarray:
        """FC over multiple tokens, executed as one GEMV per token (Sec. 6.2)."""
        xs = np.atleast_2d(xs)
        return np.stack([self.gemv(name, row, fused_gelu=fused_gelu) for row in xs])

    # ------------------------------------------------------------------
    def memory_utilization(self) -> float:
        """Fraction of reserved DRAM rows carrying useful weight data."""
        if not self._layouts:
            return 0.0
        useful = sum(
            self._shapes[name][0] * self._shapes[name][1] * 2 for name in self._layouts
        )
        reserved = sum(m.storage_bytes() for m in self._layouts.values())
        return useful / reserved
