"""Reference transformer implementation (plain NumPy, FP32).

The FPGA prototype of Sec. 6.3 validates IANUS functionally by checking that
pretrained GPT-2 models reach the expected perplexity on WikiText-2.  Neither
the pretrained weights nor the dataset are available offline, so this
reproduction validates the same property on synthetic models: the tiled,
scheduled execution (matrix-unit tiles, bank-level PIM GEMV, GELU LUT, BF16)
must compute the same numbers as this straightforward reference forward pass.

The reference model is a GPT-style decoder with learned position embeddings,
pre-norm blocks, causal attention with a KV cache, GELU FFN and a weight-tied
LM head — structurally identical to the models of Table 3, just smaller.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.models.transformer import ModelConfig

__all__ = ["TransformerWeights", "ReferenceTransformer", "softmax", "gelu", "layer_norm"]


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax (max-subtraction, as the VU kernel does)."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def gelu(x: np.ndarray) -> np.ndarray:
    """GELU with the tanh approximation used by GPT-2."""
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)))


def layer_norm(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    mean = x.mean(axis=-1, keepdims=True)
    variance = x.var(axis=-1, keepdims=True)
    return gamma * (x - mean) / np.sqrt(variance + eps) + beta


@dataclass
class BlockWeights:
    """Weights of one decoder block."""

    ln1_gamma: np.ndarray
    ln1_beta: np.ndarray
    w_q: np.ndarray
    w_k: np.ndarray
    w_v: np.ndarray
    w_o: np.ndarray
    ln2_gamma: np.ndarray
    ln2_beta: np.ndarray
    w_ffn1: np.ndarray
    b_ffn1: np.ndarray
    w_ffn2: np.ndarray
    b_ffn2: np.ndarray


@dataclass
class TransformerWeights:
    """All weights of a reference transformer."""

    token_embedding: np.ndarray
    position_embedding: np.ndarray
    blocks: list[BlockWeights]
    final_ln_gamma: np.ndarray
    final_ln_beta: np.ndarray

    @classmethod
    def random(cls, model: ModelConfig, seed: int = 0, scale: float = 0.02) -> "TransformerWeights":
        """Randomly initialised weights (GPT-2 style small-variance init)."""
        rng = np.random.default_rng(seed)
        d = model.embedding_dim

        def w(*shape):
            return (rng.standard_normal(shape) * scale).astype(np.float32)

        blocks = []
        for _ in range(model.num_blocks):
            blocks.append(
                BlockWeights(
                    ln1_gamma=np.ones(d, dtype=np.float32),
                    ln1_beta=np.zeros(d, dtype=np.float32),
                    w_q=w(d, d),
                    w_k=w(d, d),
                    w_v=w(d, d),
                    w_o=w(d, d),
                    ln2_gamma=np.ones(d, dtype=np.float32),
                    ln2_beta=np.zeros(d, dtype=np.float32),
                    w_ffn1=w(d, model.ffn_dim),
                    b_ffn1=np.zeros(model.ffn_dim, dtype=np.float32),
                    w_ffn2=w(model.ffn_dim, d),
                    b_ffn2=np.zeros(d, dtype=np.float32),
                )
            )
        return cls(
            token_embedding=w(model.vocab_size, d),
            position_embedding=w(model.max_sequence_length, d),
            blocks=blocks,
            final_ln_gamma=np.ones(d, dtype=np.float32),
            final_ln_beta=np.zeros(d, dtype=np.float32),
        )


@dataclass
class KvCache:
    """Per-block key/value cache used by the generation stage."""

    keys: list = field(default_factory=list)
    values: list = field(default_factory=list)


class ReferenceTransformer:
    """Straightforward NumPy forward pass with a KV cache."""

    def __init__(self, model: ModelConfig, weights: TransformerWeights | None = None,
                 seed: int = 0) -> None:
        self.model = model
        self.weights = weights or TransformerWeights.random(model, seed=seed)
        self._cache: list[KvCache] = [KvCache() for _ in range(model.num_blocks)]
        self._position = 0

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear the KV cache (start a new request)."""
        self._cache = [KvCache() for _ in range(self.model.num_blocks)]
        self._position = 0

    @property
    def context_length(self) -> int:
        return self._position

    # ------------------------------------------------------------------
    def forward(self, token_ids: np.ndarray) -> np.ndarray:
        """Process ``token_ids`` (appending to the cached context), return logits.

        The summarization stage calls this once with all input tokens; each
        generation step calls it with a single token.
        """
        token_ids = np.atleast_1d(np.asarray(token_ids, dtype=np.int64))
        n = token_ids.shape[0]
        w = self.weights
        d = self.model.embedding_dim
        positions = np.arange(self._position, self._position + n)
        x = w.token_embedding[token_ids] + w.position_embedding[positions]

        for block_index, block in enumerate(w.blocks):
            x = x + self._attention(layer_norm(x, block.ln1_gamma, block.ln1_beta),
                                    block, block_index)
            hidden = layer_norm(x, block.ln2_gamma, block.ln2_beta)
            hidden = gelu(hidden @ block.w_ffn1 + block.b_ffn1)
            x = x + (hidden @ block.w_ffn2 + block.b_ffn2)

        self._position += n
        x = layer_norm(x, w.final_ln_gamma, w.final_ln_beta)
        logits = x @ w.token_embedding.T
        assert logits.shape == (n, self.model.vocab_size)
        del d
        return logits

    # ------------------------------------------------------------------
    def _attention(self, x: np.ndarray, block: BlockWeights, block_index: int) -> np.ndarray:
        model = self.model
        n = x.shape[0]
        cache = self._cache[block_index]

        q = x @ block.w_q
        k = x @ block.w_k
        v = x @ block.w_v
        cache.keys.append(k)
        cache.values.append(v)
        k_all = np.concatenate(cache.keys, axis=0)
        v_all = np.concatenate(cache.values, axis=0)
        total = k_all.shape[0]

        heads_out = []
        hd = model.head_dim
        for head in range(model.num_heads):
            sl = slice(head * hd, (head + 1) * hd)
            scores = (q[:, sl] @ k_all[:, sl].T) / np.sqrt(hd)
            # Causal mask: token i (global position position + i) may attend
            # to all cached positions up to and including itself.
            mask = np.tril(np.ones((n, total), dtype=bool), k=total - n)
            scores = np.where(mask, scores, -1e9)
            attention = softmax(scores, axis=-1)
            heads_out.append(attention @ v_all[:, sl])
        merged = np.concatenate(heads_out, axis=-1)
        return merged @ block.w_o

    # ------------------------------------------------------------------
    def generate(self, prompt: np.ndarray, num_tokens: int, greedy: bool = True,
                 seed: int = 0) -> np.ndarray:
        """Run summarization on ``prompt`` then generate ``num_tokens`` tokens."""
        rng = np.random.default_rng(seed)
        self.reset()
        logits = self.forward(prompt)
        generated = []
        for _ in range(num_tokens):
            last = logits[-1]
            if greedy:
                next_token = int(np.argmax(last))
            else:
                probabilities = softmax(last)
                next_token = int(rng.choice(len(last), p=probabilities))
            generated.append(next_token)
            logits = self.forward(np.array([next_token]))
        return np.array(generated, dtype=np.int64)

    def perplexity(self, token_ids: np.ndarray) -> float:
        """Pseudo-perplexity of a token stream under the model.

        Stands in for the WikiText-2 perplexity check of the FPGA prototype:
        two functionally equivalent backends must report the same value.
        """
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.shape[0] < 2:
            raise ValueError("need at least two tokens to compute perplexity")
        self.reset()
        logits = self.forward(token_ids[:-1])
        log_probs = np.log(softmax(logits, axis=-1) + 1e-12)
        picked = log_probs[np.arange(token_ids.shape[0] - 1), token_ids[1:]]
        return float(np.exp(-picked.mean()))
