"""Functional end-to-end execution of a GPT model on the IANUS dataflow.

:class:`IanusFunctionalBackend` runs a (small, synthetic) GPT model the way
IANUS executes it:

* summarization: Q/K/V, projection and FFN matmuls on the matrix unit in
  128x64 tiles; layer norm, masked softmax and GELU on the vector unit; the
  key transpose through the on-chip streaming path;
* generation: every FC as a PIM matrix-vector product over the bank-level
  tiled weight layout (with GELU fused into the first FFN FC), QK^T and SV on
  the matrix unit, key/value concatenation in the vector unit.

Running the same token stream through this backend and through
:class:`repro.functional.reference.ReferenceTransformer` and comparing logits
(and the derived pseudo-perplexity) is this reproduction's stand-in for the
FPGA-prototype validation of Sec. 6.3, where pretrained GPT-2 checkpoints
were shown to reach the expected WikiText-2 perplexity on real PIM hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import PimConfig
from repro.functional.npu_functional import (
    MatrixUnitFunctional,
    VectorUnitFunctional,
    onchip_transpose,
)
from repro.functional.pim_functional import PimFunctionalDevice
from repro.functional.reference import ReferenceTransformer, TransformerWeights, softmax
from repro.functional.tensors import to_bf16
from repro.models.transformer import ModelConfig

__all__ = ["IanusFunctionalBackend", "FunctionalComparison", "compare_backends"]


@dataclass(frozen=True)
class FunctionalComparison:
    """Outcome of comparing the IANUS dataflow against the reference."""

    max_relative_error: float
    reference_perplexity: float
    ianus_perplexity: float
    tokens_checked: int

    @property
    def perplexity_gap(self) -> float:
        return abs(self.reference_perplexity - self.ianus_perplexity)


class IanusFunctionalBackend:
    """Numerically executes a GPT model with the IANUS operator mapping."""

    def __init__(
        self,
        model: ModelConfig,
        weights: TransformerWeights | None = None,
        seed: int = 0,
        pim_config: PimConfig | None = None,
    ) -> None:
        self.model = model
        self.weights = weights or TransformerWeights.random(model, seed=seed)
        self.matrix_unit = MatrixUnitFunctional()
        self.vector_unit = VectorUnitFunctional()
        self.pim = PimFunctionalDevice(pim_config or PimConfig())
        self._store_weights_in_pim()
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self._keys: list[list[np.ndarray]] = [[] for _ in range(self.model.num_blocks)]
        self._values: list[list[np.ndarray]] = [[] for _ in range(self.model.num_blocks)]
        self._position = 0

    def _store_weights_in_pim(self) -> None:
        """Lay every FC weight out in the PIM bank/tile format (Fig. 4)."""
        for index, block in enumerate(self.weights.blocks):
            # PIM computes y = W x with W of shape [out_features, in_features].
            self.pim.store_weight(f"block{index}/w_q", block.w_q.T)
            self.pim.store_weight(f"block{index}/w_k", block.w_k.T)
            self.pim.store_weight(f"block{index}/w_v", block.w_v.T)
            self.pim.store_weight(f"block{index}/w_o", block.w_o.T)
            self.pim.store_weight(f"block{index}/w_ffn1", block.w_ffn1.T)
            self.pim.store_weight(f"block{index}/w_ffn2", block.w_ffn2.T)
        self.pim.store_weight("lm_head", self.weights.token_embedding)

    # ------------------------------------------------------------------
    def forward(self, token_ids: np.ndarray) -> np.ndarray:
        """Process tokens and return BF16 logits (summarization or generation)."""
        token_ids = np.atleast_1d(np.asarray(token_ids, dtype=np.int64))
        n = token_ids.shape[0]
        generation = n == 1 and self._position > 0
        w = self.weights
        positions = np.arange(self._position, self._position + n)
        x = to_bf16(w.token_embedding[token_ids] + w.position_embedding[positions])

        for index, block in enumerate(w.blocks):
            normed = self.vector_unit.layer_norm(x, block.ln1_gamma, block.ln1_beta)
            attention = self._attention(normed, block, index, generation)
            x = self.vector_unit.residual_add(x, attention)
            normed = self.vector_unit.layer_norm(x, block.ln2_gamma, block.ln2_beta)
            ffn = self._ffn(normed, index, block, generation)
            x = self.vector_unit.residual_add(x, ffn)

        self._position += n
        x = self.vector_unit.layer_norm(x, w.final_ln_gamma, w.final_ln_beta)
        if generation:
            logits = self.pim.gemv("lm_head", x[-1]).reshape(1, -1)
        else:
            logits = self.matrix_unit.matmul(x, w.token_embedding.T)
        return logits

    # ------------------------------------------------------------------
    def _fc(self, name: str, x: np.ndarray, weight: np.ndarray, generation: bool,
            fused_gelu: bool = False) -> np.ndarray:
        """Run one FC on PIM (generation) or the matrix unit (summarization)."""
        if generation:
            out = self.pim.gemm_as_repeated_gemv(name, x, fused_gelu=fused_gelu)
            return out.reshape(x.shape[0], -1)
        out = self.matrix_unit.matmul(x, weight)
        if fused_gelu:
            out = self.vector_unit.gelu(out)
        return out

    def _attention(self, x: np.ndarray, block, index: int, generation: bool) -> np.ndarray:
        model = self.model
        n = x.shape[0]
        q = self._fc(f"block{index}/w_q", x, block.w_q, generation)
        k = self._fc(f"block{index}/w_k", x, block.w_k, generation)
        v = self._fc(f"block{index}/w_v", x, block.w_v, generation)
        self._keys[index].append(k)
        self._values[index].append(v)
        k_all = self.vector_unit.concat(None, np.concatenate(self._keys[index], axis=0))
        v_all = self.vector_unit.concat(None, np.concatenate(self._values[index], axis=0))
        total = k_all.shape[0]

        hd = model.head_dim
        scale = 1.0 / np.sqrt(hd)
        outputs = []
        for head in range(model.num_heads):
            sl = slice(head * hd, (head + 1) * hd)
            # Key transpose through the on-chip streaming path, then QK^T and
            # SV on the matrix unit (the Fig. 7c mapping).  The key scaling is
            # folded into the matrix unit's output scaling (Sec. 5.3).
            k_t = onchip_transpose(k_all[:, sl])
            scores = self.matrix_unit.matmul(q[:, sl], k_t, scale=scale)
            mask = np.tril(np.ones((n, total), dtype=bool), k=total - n)
            attention = self.vector_unit.masked_softmax(scores, mask)
            outputs.append(self.matrix_unit.matmul(attention, v_all[:, sl]))
        merged = np.concatenate(outputs, axis=-1)
        return self._fc(f"block{index}/w_o", merged, block.w_o, generation)

    def _ffn(self, x: np.ndarray, index: int, block, generation: bool) -> np.ndarray:
        hidden = self._fc(
            f"block{index}/w_ffn1", x, block.w_ffn1, generation, fused_gelu=True
        )
        hidden = self.vector_unit.residual_add(hidden, np.broadcast_to(block.b_ffn1, hidden.shape))
        out = self._fc(f"block{index}/w_ffn2", hidden, block.w_ffn2, generation)
        return self.vector_unit.residual_add(out, np.broadcast_to(block.b_ffn2, out.shape))

    # ------------------------------------------------------------------
    def generate(self, prompt: np.ndarray, num_tokens: int) -> np.ndarray:
        """Greedy generation mirroring :meth:`ReferenceTransformer.generate`."""
        self.reset()
        logits = self.forward(prompt)
        generated = []
        for _ in range(num_tokens):
            next_token = int(np.argmax(logits[-1]))
            generated.append(next_token)
            logits = self.forward(np.array([next_token]))
        return np.array(generated, dtype=np.int64)

    def perplexity(self, token_ids: np.ndarray) -> float:
        """Pseudo-perplexity under this backend (compare with the reference)."""
        token_ids = np.asarray(token_ids, dtype=np.int64)
        self.reset()
        logits = self.forward(token_ids[:-1]).astype(np.float64)
        log_probs = np.log(softmax(logits, axis=-1) + 1e-12)
        picked = log_probs[np.arange(token_ids.shape[0] - 1), token_ids[1:]]
        return float(np.exp(-picked.mean()))


def compare_backends(
    model: ModelConfig,
    prompt_length: int = 8,
    generated_tokens: int = 4,
    seed: int = 0,
) -> FunctionalComparison:
    """Run both backends on the same synthetic stream and compare outputs."""
    rng = np.random.default_rng(seed)
    weights = TransformerWeights.random(model, seed=seed)
    prompt = rng.integers(0, model.vocab_size, size=prompt_length)

    reference = ReferenceTransformer(model, weights=weights)
    ianus = IanusFunctionalBackend(model, weights=weights)

    reference.reset()
    ianus.reset()
    ref_logits = reference.forward(prompt)
    ianus_logits = ianus.forward(prompt)
    max_error = float(
        np.max(np.abs(ref_logits - ianus_logits) / (np.abs(ref_logits) + 1e-3))
    )
    # Exercise the generation (PIM) path for a few steps as well.
    for _ in range(generated_tokens):
        next_token = int(np.argmax(ref_logits[-1]))
        ref_logits = reference.forward(np.array([next_token]))
        ianus_logits = ianus.forward(np.array([next_token]))
        max_error = max(
            max_error,
            float(np.max(np.abs(ref_logits - ianus_logits) / (np.abs(ref_logits) + 1e-3))),
        )

    stream = rng.integers(0, model.vocab_size, size=prompt_length + generated_tokens)
    comparison = FunctionalComparison(
        max_relative_error=max_error,
        reference_perplexity=ReferenceTransformer(model, weights=weights).perplexity(stream),
        ianus_perplexity=IanusFunctionalBackend(model, weights=weights).perplexity(stream),
        tokens_checked=prompt_length + generated_tokens,
    )
    return comparison
