"""BF16 tensor emulation.

Every model in the evaluation runs in BF16 (Sec. 6.1), which NumPy does not
provide natively.  BF16 is FP32 with the bottom 16 mantissa bits dropped, so
the emulation truncates (rounds to nearest-even) the lower half of the FP32
bit pattern.  The functional simulators quantise their operands to BF16 at
the same points real hardware would (weights at rest, activations between
operators) while accumulating in FP32, matching the MAC accumulators of the
matrix unit and the PIM processing units.
"""

from __future__ import annotations

import numpy as np

__all__ = ["to_bf16", "bf16_matmul", "bf16_error", "BF16_EPSILON"]

#: Relative precision of BF16 (8-bit mantissa including the implicit bit).
BF16_EPSILON = 2.0 ** -8


def to_bf16(array: np.ndarray) -> np.ndarray:
    """Quantise an array to BF16 precision (stored as float32).

    Uses round-to-nearest-even on the truncated 16 mantissa bits, which is
    what the commercial hardware implements.
    """
    as_float32 = np.asarray(array, dtype=np.float32)
    bits = as_float32.view(np.uint32)
    # Round to nearest even: add half of the dropped range, plus the parity
    # bit of the kept mantissa portion.
    rounding_bias = 0x7FFF + ((bits >> 16) & 1)
    rounded = (bits + rounding_bias) & np.uint32(0xFFFF0000)
    return rounded.view(np.float32)


def bf16_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix multiply with BF16 inputs and FP32 accumulation."""
    return to_bf16(np.matmul(to_bf16(a).astype(np.float32), to_bf16(b).astype(np.float32)))


def bf16_error(reference: np.ndarray, value: np.ndarray) -> float:
    """Maximum relative error of ``value`` against ``reference``."""
    reference = np.asarray(reference, dtype=np.float32)
    value = np.asarray(value, dtype=np.float32)
    scale = np.maximum(np.abs(reference), 1e-6)
    return float(np.max(np.abs(reference - value) / scale))
