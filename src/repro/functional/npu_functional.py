"""Functional model of the NPU compute units.

These routines compute the same values the timing models charge time for:

* the matrix unit executes matmuls in 128x64 tiles with FP32 accumulation and
  BF16 operands, including the fused output scaling / bias addition mentioned
  in Sec. 4.1;
* the vector unit implements two-phase layer normalisation, masked softmax
  with max-subtraction, residual addition, and GELU through the same lookup
  table the PIM uses;
* the on-chip transpose reproduces the AM->WM streaming-buffer path (it is a
  pure data-movement operation, so functionally it is just a transpose).

They are used by :mod:`repro.functional.verify` to show that the IANUS
dataflow is numerically equivalent to the reference transformer.
"""

from __future__ import annotations

import numpy as np

from repro.config import MatrixUnitConfig
from repro.functional.tensors import to_bf16
from repro.pim.processing_unit import gelu_lookup_table, gelu_via_lut

__all__ = ["MatrixUnitFunctional", "VectorUnitFunctional", "onchip_transpose"]


class MatrixUnitFunctional:
    """Tile-by-tile systolic-array matmul with BF16 operands."""

    def __init__(self, config: MatrixUnitConfig | None = None) -> None:
        self.config = config or MatrixUnitConfig()

    def matmul(self, activations: np.ndarray, weights: np.ndarray,
               bias: np.ndarray | None = None, scale: float = 1.0) -> np.ndarray:
        """Compute ``activations @ weights * scale + bias`` in MU tiles.

        ``activations`` is ``[n, d_in]`` (AM layout) and ``weights`` is
        ``[d_in, d_out]`` (WM layout).  The loop structure mirrors the tiling
        the timing model charges for: 128-token row tiles and 64-feature
        column tiles, streaming the reduction dimension.
        """
        activations = to_bf16(activations)
        weights = to_bf16(weights)
        n, d_in = activations.shape
        d_in_w, d_out = weights.shape
        if d_in != d_in_w:
            raise ValueError(f"dimension mismatch: {d_in} vs {d_in_w}")
        output = np.zeros((n, d_out), dtype=np.float32)
        rows, cols = self.config.rows, self.config.cols
        for row_start in range(0, n, rows):
            row_end = min(row_start + rows, n)
            for col_start in range(0, d_out, cols):
                col_end = min(col_start + cols, d_out)
                tile = (
                    activations[row_start:row_end].astype(np.float32)
                    @ weights[:, col_start:col_end].astype(np.float32)
                )
                output[row_start:row_end, col_start:col_end] = tile
        if scale != 1.0:
            output *= scale
        if bias is not None:
            output += to_bf16(bias).astype(np.float32)
        return to_bf16(output)


class VectorUnitFunctional:
    """Functional implementations of the VU kernels."""

    def __init__(self) -> None:
        self._gelu_table = gelu_lookup_table()

    def layer_norm(self, x: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
                   eps: float = 1e-5) -> np.ndarray:
        """Two-phase layer normalisation (Sec. 4.2.2)."""
        x = to_bf16(x).astype(np.float32)
        # Phase 1: statistics.
        mean = x.mean(axis=-1, keepdims=True)
        variance = x.var(axis=-1, keepdims=True)
        # Phase 2: normalisation.
        normalised = (x - mean) / np.sqrt(variance + eps)
        return to_bf16(normalised * gamma + beta)

    def masked_softmax(self, scores: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
        """Masked softmax with max-subtraction for stability (Sec. 4.2.2).

        ``mask`` is a boolean bitmap (True = attend); masked positions receive
        a large negative score before the exponentiation.
        """
        scores = to_bf16(scores).astype(np.float32)
        if mask is not None:
            scores = np.where(mask, scores, np.float32(-1e9))
        shifted = scores - scores.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        return to_bf16(exp / exp.sum(axis=-1, keepdims=True))

    def gelu(self, x: np.ndarray) -> np.ndarray:
        """GELU via the shared lookup table with linear interpolation."""
        return to_bf16(gelu_via_lut(to_bf16(x), self._gelu_table))

    def residual_add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return to_bf16(to_bf16(a).astype(np.float32) + to_bf16(b).astype(np.float32))

    def concat(self, previous: np.ndarray | None, new: np.ndarray) -> np.ndarray:
        """Key/value concatenation performed in the vector unit (Fig. 7c)."""
        new = to_bf16(new)
        if previous is None or previous.size == 0:
            return new
        return np.concatenate([to_bf16(previous), new], axis=0)


def onchip_transpose(matrix: np.ndarray) -> np.ndarray:
    """Key transpose through the streaming buffer (pure data movement)."""
    return np.ascontiguousarray(to_bf16(matrix).T)
