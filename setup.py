"""Legacy setuptools entry point.

Kept so that ``pip install -e .`` works in offline environments whose
setuptools/wheel combination cannot build PEP 660 editable wheels; all
project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
