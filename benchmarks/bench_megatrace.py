"""Megatrace benchmark: a day of production traffic in seconds (PR 7).

Times the vectorized array serving engine
(``ServingSimulator(engine="array")``) on three cells and pins the
correctness side of each so a perf number can never hide a wrong one:

* ``speedup`` — one trace served by both engines (pooled metrics agree to
  1e-9; the per-iteration differential lives in ``tests/test_megatrace.py``)
  with the wall-clock ratio recorded;
* ``megatrace_1m`` — a 1,000,000-request ``chatbot`` overload streamed
  through ``generate_stream``/``simulate_stream`` in O(chunk) memory with
  pooled-only metrics; the PR's acceptance bar is <= 10 s of wall clock at
  full scale;
* ``cluster_100k`` — 100,000 requests over a 4-replica cluster with
  least-outstanding-tokens routing, array replicas throughout.

Every benched configuration also runs a *capped* companion with
``record_events=True`` whose event log replays clean through
:func:`repro.serving.validate.check_invariants` (cluster cells through
``validate_invariants``), so the exact configs being timed are the ones
being verified.

Run with::

    pytest benchmarks/bench_megatrace.py --benchmark-only -q

``REPRO_BENCH_MEGATRACE_REQUESTS`` caps the megatrace size (CI smoke uses
20_000; the wall-clock acceptance assertions only engage at full scale).
Set ``REPRO_BENCH_REPORT=/path/to/BENCH_megatrace.json`` to persist the
cell timings (``BENCH_megatrace_pr7.json`` is the PR 7 reference).
"""

import json
import os
from time import perf_counter

from repro.core.costmodel import make_cost_model
from repro.models import GPT2_CONFIGS
from repro.serving import (
    ClusterSimulator,
    ServingSimulator,
    check_invariants,
    decode_kv_bounds,
    get_trace_generator,
)

MODEL = GPT2_CONFIGS["m"]
BACKEND = "ianus"
TRACE = "chatbot"
#: Overload arrival rate: the device is saturated, so wall time measures
#: the engine, not idle-clock jumps.
RATE_RPS = 2000.0
#: Continuous-batching cap used by the timed cells.
MAX_BATCH = 4
FULL_REQUESTS = 1_000_000
CLUSTER_REQUESTS = 100_000
CLUSTER_REPLICAS = 4
SPEEDUP_REQUESTS = 20_000
#: Companion size for the record_events invariant replays.
VALIDATE_REQUESTS = 2_000

POOLED_FIELDS = (
    "num_requests", "makespan_s", "busy_s", "utilization", "output_tokens",
    "tokens_per_s", "latency_mean_s", "latency_p99_s", "ttft_p99_s",
    "tpot_mean_s", "energy_j", "flops", "prefill_passes", "decode_passes",
    "admissions", "peak_active", "kv_peak_pages", "slo_attainment",
)


def _requested_size() -> int:
    raw = os.environ.get("REPRO_BENCH_MEGATRACE_REQUESTS")
    return FULL_REQUESTS if not raw else max(1, int(raw))


def _scaled(full: int, requested: int) -> int:
    return min(full, requested)


def _simulator(engine: str, detail: bool = True) -> ServingSimulator:
    return ServingSimulator(
        make_cost_model(BACKEND), MODEL, engine=engine,
        max_batch=MAX_BATCH, per_request_detail=detail,
    )


def _pooled_close(reference, candidate, tol=1e-9) -> "list[str]":
    drifts = []
    for field in POOLED_FIELDS:
        expected = getattr(reference, field)
        actual = getattr(candidate, field)
        if expected is None or actual is None:
            if expected is not actual:
                drifts.append(field)
            continue
        scale = max(abs(expected), abs(actual), 1.0)
        if abs(expected - actual) / scale > tol:
            drifts.append(f"{field}: {expected!r} != {actual!r}")
    return drifts


def _validate_single() -> int:
    """Replay the benched single-replica config (capped) through the checker."""
    generator = get_trace_generator(TRACE)
    trace = generator.generate(VALIDATE_REQUESTS, RATE_RPS, seed=0)
    simulator = _simulator("array")
    simulator.simulate(trace, record_events=True)
    violations = check_invariants(
        simulator.events, trace,
        page_tokens=simulator.page_tokens, admission=simulator.admission,
    )
    return len(violations)


def _validate_cluster() -> int:
    """Replay the benched cluster config (capped) through the checker."""
    generator = get_trace_generator(TRACE)
    trace = generator.generate(VALIDATE_REQUESTS, RATE_RPS, seed=0)
    cluster = ClusterSimulator(
        make_cost_model(BACKEND), MODEL, num_replicas=CLUSTER_REPLICAS,
        router="least-outstanding-tokens", engine="array",
        max_batch=MAX_BATCH,
    )
    cluster.simulate(trace, record_events=True)
    return len(cluster.validate_invariants())


def run_megatrace() -> dict:
    requested = _requested_size()
    full_scale = requested >= FULL_REQUESTS
    generator = get_trace_generator(TRACE)
    bounds = decode_kv_bounds(generator.workloads)
    cells = {}

    # --- speedup: both engines on one identical trace -----------------
    size = _scaled(SPEEDUP_REQUESTS, requested)
    trace = generator.generate(size, RATE_RPS, seed=0)
    start = perf_counter()
    reference = _simulator("object").simulate(trace)
    object_s = perf_counter() - start
    start = perf_counter()
    candidate = _simulator("array").simulate(trace)
    array_s = perf_counter() - start
    drifts = _pooled_close(reference, candidate)
    cells["speedup"] = {
        "requests": size,
        "object_wall_s": round(object_s, 3),
        "array_wall_s": round(array_s, 3),
        "speedup": round(object_s / array_s, 1) if array_s else None,
        "pooled_drifts": drifts,
    }

    # --- megatrace_1m: streamed, pooled-only, O(chunk) memory ---------
    size = _scaled(FULL_REQUESTS, requested)
    simulator = _simulator("array", detail=False)
    start = perf_counter()
    metrics = simulator.simulate_stream(
        generator.generate_stream(size, RATE_RPS, seed=0, chunk_requests=8192),
        kv_bounds=bounds,
    )
    wall = perf_counter() - start
    cells["megatrace_1m"] = {
        "requests": size,
        "wall_s": round(wall, 2),
        "sim_requests_per_wall_s": round(size / wall),
        "makespan_s": round(metrics.makespan_s, 1),
        "utilization": round(metrics.utilization, 3),
        "full_scale": size == FULL_REQUESTS,
    }

    # --- cluster_100k: 4 array replicas, token-aware routing ----------
    size = _scaled(CLUSTER_REQUESTS, requested)
    trace = generator.generate(size, RATE_RPS * CLUSTER_REPLICAS, seed=0)
    cluster = ClusterSimulator(
        make_cost_model(BACKEND), MODEL, num_replicas=CLUSTER_REPLICAS,
        router="least-outstanding-tokens", engine="array",
        max_batch=MAX_BATCH,
    )
    start = perf_counter()
    cluster_metrics = cluster.simulate(trace, record_events=False)
    cluster_wall = perf_counter() - start
    cells["cluster_100k"] = {
        "requests": size,
        "replicas": CLUSTER_REPLICAS,
        "router": "least-outstanding-tokens",
        "wall_s": round(cluster_wall, 2),
        "sim_requests_per_wall_s": round(size / cluster_wall),
        "completed": cluster_metrics.num_requests,
        "full_scale": size == CLUSTER_REQUESTS,
    }

    # --- invariant companions: the benched configs, capped + replayed -
    cells["invariant_replay"] = {
        "requests": VALIDATE_REQUESTS,
        "single_violations": _validate_single(),
        "cluster_violations": _validate_cluster(),
    }

    return {
        "benchmark": "megatrace",
        "backend": BACKEND,
        "model": MODEL.name,
        "trace": TRACE,
        "rate_rps": RATE_RPS,
        "max_batch": MAX_BATCH,
        "full_scale": full_scale,
        "cells": cells,
    }


def test_megatrace_benchmark(benchmark):
    document = benchmark.pedantic(run_megatrace, rounds=1, iterations=1)
    cells = document["cells"]
    assert cells["speedup"]["pooled_drifts"] == []
    assert cells["speedup"]["speedup"] is None or cells["speedup"]["speedup"] > 1.0
    assert cells["megatrace_1m"]["requests"] > 0
    assert cells["cluster_100k"]["completed"] == cells["cluster_100k"]["requests"]
    assert cells["invariant_replay"]["single_violations"] == 0
    assert cells["invariant_replay"]["cluster_violations"] == 0
    if document["full_scale"]:
        # The PR's acceptance bar, asserted only at full scale (CI smoke
        # runs capped and only re-proves correctness).
        assert cells["megatrace_1m"]["wall_s"] <= 10.0
        assert cells["cluster_100k"]["wall_s"] < 10.0
    report_path = os.environ.get("REPRO_BENCH_REPORT")
    if report_path:
        with open(report_path, "w") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
    print()
    print(json.dumps(document, indent=2))
