"""Benchmark: regenerate Fig. 14 of the paper.

BERT throughput and compute utilisation on the A100 and IANUS
(paper: 3.1x/2.0x throughput for BERT-B/L, 5.2x-1.0x utilisation ratios).

Run with ``pytest benchmarks/bench_fig14.py --benchmark-only -s`` to also print the
regenerated rows next to the paper's published claims.
"""

from repro.experiments.registry import run_experiment


def test_fig14_benchmark(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("fig14",), kwargs={"fast": True}, rounds=1, iterations=1,
    )
    print()
    print(result.to_text())
    assert result.rows
