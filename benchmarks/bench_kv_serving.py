"""Perf-regression smoke benchmark for memory-aware serving.

Times the PR 4 ``serving`` sweep (GPT-2 XL: offered load x backend x
policy x prefill chunking x KV budget, 64 cells in fast mode) through the
serial runner, and asserts the sweep's headline properties so a perf
regression can never hide a correctness one:

* throughput-latency curves stay monotone in offered load;
* interleaved continuous batching dominates FCFS at the highest load;
* SRPT mean latency never exceeds FCFS;
* the priority policy keeps class-0 SLO attainment at least as high as the
  class-blind policy;
* a quarter KV budget never beats the full budget (memory pressure can
  only throttle);
* every cell's event log passes the scheduling-invariant checks (the
  sweep doubles as a cheap oracle for the scheduler's contract).

Run with::

    pytest benchmarks/bench_kv_serving.py --benchmark-only -q

Set ``REPRO_BENCH_REPORT=/path/to/BENCH_kv_serving.json`` to also persist
the per-experiment timing report for diffing against a previous run
(``BENCH_kv_serving_pr4.json`` is the PR 4 reference).
"""

import os

from repro.perf import run_many, write_report


def test_kv_serving_sweep_benchmark(benchmark):
    outcome = benchmark.pedantic(
        run_many,
        args=(("serving",),),
        kwargs={"fast": True, "jobs": 1},
        rounds=1,
        iterations=1,
    )
    assert all(t.ok for t in outcome.report.timings)
    result = outcome.results["serving"]
    assert result.data["monotone"]
    assert result.data["dominates"]
    assert result.data["srpt_wins"]
    assert result.data["priority_protects"]
    assert result.data["kv_pressure"]
    assert result.data["valid"]
    report_path = os.environ.get("REPRO_BENCH_REPORT")
    if report_path:
        write_report(outcome.report, report_path)
    print()
    print(outcome.report.to_text())
    print(outcome.report.cache_summary())
