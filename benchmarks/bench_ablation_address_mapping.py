"""Benchmark: regenerate Ablation of the paper.

PIM-aware tile placement (Fig. 5 address mapping) vs a row-conflicting
layout.

Run with ``pytest benchmarks/bench_ablation_address_mapping.py --benchmark-only -s`` to also print the
regenerated rows next to the paper's published claims.
"""

from repro.experiments.registry import run_experiment


def test_ablation_address_mapping_benchmark(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("ablation-address-mapping",), kwargs={"fast": True}, rounds=1, iterations=1,
    )
    print()
    print(result.to_text())
    assert result.rows
