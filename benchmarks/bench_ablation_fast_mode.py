"""Benchmark: regenerate Ablation of the paper.

Accuracy of the sampled-KV fast generation mode against exact per-token
simulation.

Run with ``pytest benchmarks/bench_ablation_fast_mode.py --benchmark-only -s`` to also print the
regenerated rows next to the paper's published claims.
"""

from repro.experiments.registry import run_experiment


def test_ablation_fast_mode_benchmark(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("ablation-fast-mode",), kwargs={"fast": True}, rounds=1, iterations=1,
    )
    print()
    print(result.to_text())
    assert result.rows
