"""KV page hierarchy benchmark: prefix sharing + host-DRAM swap (PR 9).

PR 9 extends the page accountant to reference-counted shared prefixes and
adds a host-DRAM swap tier behind optimistic admission.  Cells:

* ``concurrency_gain`` — the same arrivals served with 0% and 50% of the
  trace sharing a 64-token prefix at a fixed ``kv_fraction``: the shared
  pool must admit at least as much peak concurrency, and the gain is the
  headline number (shared pages are charged once per group, not once per
  member).  Arrival identity is re-proved in-cell: the share=0 trace is
  byte-identical to a trace generated without any prefix arguments.
* ``swap_frontier`` — discard-and-recompute versus swap-to-host across a
  ladder of link bandwidths on the 50%-shared trace.  Swap pays link
  seconds instead of recomputed tokens, so the slowest link must *lose*
  to recomputation and the crossover bandwidth (the slowest swept link
  that beats recompute) is recorded.  Full scale asserts the crossover
  exists; capped CI runs only assert the slow-link loss.
* ``validation`` — the correctness side: the array engine's
  exact-accounting mode replays the shared+swap config byte-identically
  to the object engine (event logs and pooled metrics), and the extended
  invariant checker (refcounted shares and swap residency re-derived
  from first principles) reports zero violations on every benched
  configuration.

Run with::

    pytest benchmarks/bench_kv_hierarchy.py --benchmark-only -q

``REPRO_BENCH_KV_HIERARCHY_REQUESTS`` caps the cell sizes (CI smoke uses
300; the crossover-exists assertion only engages at full scale, the
concurrency-gain, slow-link and validation assertions always).  Set
``REPRO_BENCH_REPORT=/path/to/BENCH_kv_hierarchy.json`` to persist the
cells (``BENCH_kv_hierarchy_pr9.json`` is the PR 9 reference).
"""

import json
import os
from time import perf_counter

from repro.core.costmodel import make_cost_model
from repro.models import GPT2_CONFIGS
from repro.serving import ServingSimulator, get_trace_generator
from repro.serving.simulator import mean_service_time_s
from repro.serving.validate import check_invariants

MODEL = GPT2_CONFIGS["xl"]
BACKEND = "ianus"
TRACE = "chatbot"
POLICY = "interleaved"
MAX_BATCH = 8
#: Memory pressure: the KV pool, not the batch cap, binds admission.
KV_FRACTION = 0.06
#: Offered load as a fraction of nominal capacity (oversubscribed).
LOAD = 2.0
PREFIX_SHARE = 0.5
PREFIX_TOKENS = 64
PREFIX_GROUPS = 2
#: Host-link ladder for the swap frontier (Gbit/s).
LINKS = (0.5, 2.0, 8.0, 32.0)
FULL_REQUESTS = 1_500
VALIDATE_REQUESTS = 200
SEED = 9


def _requested_size() -> int:
    raw = os.environ.get("REPRO_BENCH_KV_HIERARCHY_REQUESTS")
    return FULL_REQUESTS if not raw else max(1, int(raw))


def _rate_rps(cost_model, generator) -> float:
    service = mean_service_time_s(cost_model, MODEL, generator.workloads)
    return LOAD / service


def _serve(cost_model, trace, *, engine="array", record_events=False, **kwargs):
    simulator = ServingSimulator(
        cost_model, MODEL, engine=engine, policy=POLICY, max_batch=MAX_BATCH,
        kv_fraction=KV_FRACTION, admission="optimistic", **kwargs,
    )
    start = perf_counter()
    metrics = simulator.simulate(trace, record_events=record_events)
    wall = perf_counter() - start
    return simulator, metrics, wall


def _concurrency_cell(cost_model, generator, rate_rps, size):
    plain = generator.generate(size, rate_rps, seed=SEED)
    baseline_trace = generator.generate(
        size, rate_rps, seed=SEED, prefix_share=0.0,
        prefix_tokens=PREFIX_TOKENS, prefix_groups=PREFIX_GROUPS,
    )
    shared_trace = generator.generate(
        size, rate_rps, seed=SEED, prefix_share=PREFIX_SHARE,
        prefix_tokens=PREFIX_TOKENS, prefix_groups=PREFIX_GROUPS,
    )
    _, baseline, baseline_wall = _serve(cost_model, baseline_trace)
    _, shared, shared_wall = _serve(cost_model, shared_trace)
    return {
        "requests": size,
        "kv_fraction": KV_FRACTION,
        "prefix_share": PREFIX_SHARE,
        "prefix_tokens": PREFIX_TOKENS,
        "prefix_groups": PREFIX_GROUPS,
        "share0_trace_byte_identical": baseline_trace == plain,
        "baseline": {
            "peak_active": baseline.peak_active,
            "admissions": baseline.admissions,
            "preemptions": baseline.preemptions,
            "tokens_per_s": round(baseline.tokens_per_s, 1),
            "makespan_s": round(baseline.makespan_s, 3),
            "wall_s": round(baseline_wall, 3),
        },
        "shared": {
            "peak_active": shared.peak_active,
            "admissions": shared.admissions,
            "preemptions": shared.preemptions,
            "tokens_per_s": round(shared.tokens_per_s, 1),
            "makespan_s": round(shared.makespan_s, 3),
            "wall_s": round(shared_wall, 3),
        },
        "concurrency_gain": (
            round(shared.peak_active / baseline.peak_active, 3)
            if baseline.peak_active
            else None
        ),
    }


def _frontier_cell(cost_model, generator, rate_rps, size):
    trace = generator.generate(
        size, rate_rps, seed=SEED, prefix_share=PREFIX_SHARE,
        prefix_tokens=PREFIX_TOKENS, prefix_groups=PREFIX_GROUPS,
    )
    _, recompute, recompute_wall = _serve(cost_model, trace)
    ladder = {}
    for link in LINKS:
        _, swapped, wall = _serve(
            cost_model, trace, swap=True, link_gbps=link
        )
        ladder[str(link)] = {
            "makespan_s": round(swapped.makespan_s, 3),
            "latency_p99_s": round(swapped.latency_p99_s, 4),
            "preemptions": swapped.preemptions,
            "recomputed_tokens": swapped.recomputed_tokens,
            "swap_outs": swapped.swap_outs,
            "swapped_pages": swapped.swapped_pages,
            "wall_s": round(wall, 3),
        }
    crossover = next(
        (
            link
            for link in LINKS
            if ladder[str(link)]["makespan_s"] <= recompute.makespan_s
        ),
        None,
    )
    return {
        "requests": size,
        "links_gbps": list(LINKS),
        "recompute": {
            "makespan_s": round(recompute.makespan_s, 3),
            "latency_p99_s": round(recompute.latency_p99_s, 4),
            "preemptions": recompute.preemptions,
            "recomputed_tokens": recompute.recomputed_tokens,
            "wall_s": round(recompute_wall, 3),
        },
        "swap": ladder,
        "crossover_gbps": crossover,
        "slow_link_loses": (
            ladder[str(LINKS[0])]["makespan_s"] > recompute.makespan_s
        ),
    }


def _validation_cell(cost_model, generator, rate_rps):
    trace = generator.generate(
        VALIDATE_REQUESTS, rate_rps, seed=SEED, prefix_share=PREFIX_SHARE,
        prefix_tokens=PREFIX_TOKENS, prefix_groups=PREFIX_GROUPS,
    )
    out = {"requests": VALIDATE_REQUESTS}
    violations = {}
    agree = {}
    for label, kwargs in (
        ("shared", {}),
        ("shared_swap", {"swap": True, "link_gbps": 8.0}),
    ):
        reference, ref_metrics, _ = _serve(
            cost_model, trace, engine="object", record_events=True, **kwargs
        )
        candidate, cand_metrics, _ = _serve(
            cost_model, trace, engine="array", record_events=True, **kwargs
        )
        agree[label] = (
            reference.events == candidate.events
            and ref_metrics.to_dict() == cand_metrics.to_dict()
        )
        violations[label] = len(
            check_invariants(
                reference.events, trace,
                page_tokens=reference.page_tokens, admission="optimistic",
            )
        )
    out["engines_byte_identical"] = agree
    out["invariant_violations"] = violations
    return out


def run_kv_hierarchy() -> dict:
    requested = _requested_size()
    full_scale = requested >= FULL_REQUESTS
    cost_model = make_cost_model(BACKEND)
    generator = get_trace_generator(TRACE)
    rate_rps = _rate_rps(cost_model, generator)
    size = min(FULL_REQUESTS, requested)
    cells = {
        "concurrency_gain": _concurrency_cell(
            cost_model, generator, rate_rps, size
        ),
        "swap_frontier": _frontier_cell(cost_model, generator, rate_rps, size),
        "validation": _validation_cell(cost_model, generator, rate_rps),
    }
    return {
        "benchmark": "kv_hierarchy",
        "backend": BACKEND,
        "model": MODEL.name,
        "trace": TRACE,
        "kv_fraction": KV_FRACTION,
        "load_fraction": LOAD,
        "max_batch": MAX_BATCH,
        "full_scale": full_scale,
        "cells": cells,
    }


def test_kv_hierarchy_benchmark(benchmark):
    document = benchmark.pedantic(run_kv_hierarchy, rounds=1, iterations=1)
    cells = document["cells"]
    gain = cells["concurrency_gain"]
    # Correctness gates engage at every scale.
    assert gain["share0_trace_byte_identical"]
    validation = cells["validation"]
    assert all(validation["engines_byte_identical"].values())
    assert all(
        count == 0 for count in validation["invariant_violations"].values()
    )
    # Sharing must never admit less from the same pool.
    assert gain["concurrency_gain"] is not None
    assert gain["concurrency_gain"] >= 1.0
    frontier = cells["swap_frontier"]
    assert frontier["slow_link_loses"]
    if document["full_scale"]:
        assert gain["shared"]["peak_active"] > gain["baseline"]["peak_active"]
        assert frontier["crossover_gbps"] is not None
    report_path = os.environ.get("REPRO_BENCH_REPORT")
    if report_path:
        with open(report_path, "w") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
    print()
    print(json.dumps(document, indent=2))
