"""Benchmark: regenerate Fig. 8 of the paper.

End-to-end GPT-2 inference latency on the A100 GPU and IANUS across the
12 (input, output) configurations and 4 model sizes; reports the per-model and
overall average speedups (paper: 6.2x overall).

Run with ``pytest benchmarks/bench_fig08.py --benchmark-only -s`` to also print the
regenerated rows next to the paper's published claims.
"""

from repro.experiments.registry import run_experiment


def test_fig08_benchmark(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("fig08",), kwargs={"fast": True}, rounds=1, iterations=1,
    )
    print()
    print(result.to_text())
    assert result.rows
