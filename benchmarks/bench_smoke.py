"""Perf-regression smoke benchmark: three representative figures.

Runs the Fig. 8 (workload sweep), Fig. 15 (configuration sweep) and Fig. 17
(multi-device sweep) experiments through the parallel runner and times the
whole regeneration — the same sweep tracked in the PR-over-PR timing reports.
Run with::

    pytest benchmarks/bench_smoke.py --benchmark-only -q

Set ``REPRO_BENCH_REPORT=/path/to/BENCH_smoke.json`` to also persist the
per-experiment timing report for diffing against a previous run.
"""

import os

from repro.perf import run_many, write_report

#: One experiment per sweep axis: workloads, configurations, device counts.
REPRESENTATIVE_FIGURES = ("fig08", "fig15", "fig17")


def test_smoke_sweep_benchmark(benchmark):
    outcome = benchmark.pedantic(
        run_many,
        args=(REPRESENTATIVE_FIGURES,),
        kwargs={"fast": True, "jobs": 1},
        rounds=1,
        iterations=1,
    )
    assert set(outcome.results) == set(REPRESENTATIVE_FIGURES)
    assert all(t.ok for t in outcome.report.timings)
    report_path = os.environ.get("REPRO_BENCH_REPORT")
    if report_path:
        write_report(outcome.report, report_path)
    print()
    print(outcome.report.to_text())
