"""Perf-regression smoke benchmark for production-ops chaos serving.

Times the PR 6 ``chaos`` sweep (GPT-2 M on replicated IANUS: failure
injection x failover x causal autoscaling x non-stationary traffic on the
``chatbot`` trace) through the serial runner, and asserts the sweep's
headline properties so a perf regression can never hide a correctness one:

* the ops layer costs nothing when inert: a one-replica cluster with
  ``failures="none"`` and the ``fixed`` autoscaler reproduces the plain
  simulator byte for byte;
* a replica failure loses nothing — every request completes, output
  tokens are conserved exactly against the trace, and the in-flight work
  is rerouted to the survivors for recompute;
* p99 latency through the failure window degrades by a bounded factor of
  the clean run, and the chaos run replays byte-for-byte from the same
  seed and schedule;
* a causal autoscaler lands on the SLO-vs-replica-seconds frontier:
  (nearly) the over-provisioned fixed fleet's attainment at a fraction of
  its replica-seconds, on a diurnal trace it cannot read ahead;
* every cell's event logs pass the extended invariant checks (failure
  drops, recoveries and scale markers included).

Run with::

    pytest benchmarks/bench_chaos.py --benchmark-only -q

Set ``REPRO_BENCH_REPORT=/path/to/BENCH_chaos.json`` to also persist the
per-experiment timing report — augmented with a ``chaos_claims`` section
pinning the differential identity, the failover guarantees and the
attainment-vs-replica-seconds frontier — for diffing against a previous
run (``BENCH_chaos_pr6.json`` is the PR 6 reference).
"""

import json
import os

from repro.perf import run_many, write_report


def test_chaos_sweep_benchmark(benchmark):
    outcome = benchmark.pedantic(
        run_many,
        args=(("chaos",),),
        kwargs={"fast": True, "jobs": 1},
        rounds=1,
        iterations=1,
    )
    assert all(t.ok for t in outcome.report.timings)
    result = outcome.results["chaos"]
    assert result.data["differential"]
    assert result.data["nothing_lost"]
    assert result.data["failover_loses_nothing"]
    assert result.data["failover_p99_bounded"]
    assert result.data["failover_deterministic"]
    assert result.data["autoscaler_beats_fixed_overprovisioned"]
    assert result.data["valid"]
    report_path = os.environ.get("REPRO_BENCH_REPORT")
    if report_path:
        path = write_report(outcome.report, report_path)
        document = json.loads(path.read_text())
        document["chaos_claims"] = {
            key: result.data[key]
            for key in (
                "differential", "nothing_lost", "failover_loses_nothing",
                "failover_p99_bounded", "failover_deterministic",
                "autoscaler_beats_fixed_overprovisioned", "best_adaptive",
                "valid", "frontier", "failover", "flash", "chaos",
            )
        }
        path.write_text(json.dumps(document, indent=2) + "\n")
    print()
    print(outcome.report.to_text())
    print(outcome.report.cache_summary())
