"""Benchmark: regenerate Fig. 2 of the paper.

A100 latency and FLOPs breakdown of the GPT-2 XL generation-stage decoder,
including the computing vs non-computing split of self-attention.

Run with ``pytest benchmarks/bench_fig02.py --benchmark-only -s`` to also print the
regenerated rows next to the paper's published claims.
"""

from repro.experiments.registry import run_experiment


def test_fig02_benchmark(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("fig02",), kwargs={"fast": True}, rounds=1, iterations=1,
    )
    print()
    print(result.to_text())
    assert result.rows
