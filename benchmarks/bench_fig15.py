"""Benchmark: regenerate Fig. 15 of the paper.

Sensitivity to the number of NPU cores and PIM chips for summarization-only
and generation-dominant workloads on GPT-2 L.

Run with ``pytest benchmarks/bench_fig15.py --benchmark-only -s`` to also print the
regenerated rows next to the paper's published claims.
"""

from repro.experiments.registry import run_experiment


def test_fig15_benchmark(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("fig15",), kwargs={"fast": True}, rounds=1, iterations=1,
    )
    print()
    print(result.to_text())
    assert result.rows
