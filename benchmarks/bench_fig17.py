"""Benchmark: regenerate Fig. 17 of the paper.

Larger LLMs (GPT 6.7B/13B/30B) on 2/4/8 IANUS devices vs a single A100
(paper: 2.4x / 3.4x / 5.3x average speedups).

Run with ``pytest benchmarks/bench_fig17.py --benchmark-only -s`` to also print the
regenerated rows next to the paper's published claims.
"""

from repro.experiments.registry import run_experiment


def test_fig17_benchmark(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("fig17",), kwargs={"fast": True}, rounds=1, iterations=1,
    )
    print()
    print(result.to_text())
    assert result.rows
