"""Cell-sharding smoke benchmark: Fig. 8 serial vs ``--jobs N`` sharded.

The pytest entry point times the sharded regeneration of the Fig. 8 sweep
(48 model x workload cells over a 2-worker pool) and asserts the rows are
byte-identical to the serial path — the equivalence the cell-sharding design
guarantees.  Run with::

    pytest benchmarks/bench_shard.py --benchmark-only -q

Running this module as a script regenerates ``BENCH_shard_pr2.json``, the
PR-over-PR evidence file: the fig08+fig15+fig17 sweep in all four modes
(serial/sharded x cold/warm persistent cache), each in a fresh subprocess so
cold really means a cold process *and* a cold disk cache::

    PYTHONPATH=src python benchmarks/bench_shard.py [output.json]
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import tempfile
from datetime import datetime, timezone
from pathlib import Path

from repro.perf import run_many

SWEEP_FIGURES = ("fig08", "fig15", "fig17")
#: PR 1's measured single-process wall clock for the same three-figure sweep
#: (fast mode, cold cache) — the bar the sharded/warm paths must beat.
PR1_SERIAL_SECONDS = 0.231


def test_fig08_sharded_matches_serial_benchmark(benchmark):
    serial = run_many(["fig08"], fast=True, jobs=1)
    outcome = benchmark.pedantic(
        run_many,
        args=(["fig08"],),
        kwargs={"fast": True, "jobs": 2, "shard_cells": True},
        rounds=1,
        iterations=1,
    )
    assert outcome.report.sharded
    assert all(t.ok for t in outcome.report.timings)
    assert outcome.results["fig08"].rows == serial.results["fig08"].rows
    (timing,) = outcome.report.timings
    assert timing.cells == 48
    print()
    print(outcome.report.to_text())


# ----------------------------------------------------------------------
# BENCH_shard_pr2.json generator (script mode)
# ----------------------------------------------------------------------
_CHILD_SCRIPT = """
import json, sys
from repro.perf import run_many

jobs = int(sys.argv[1])
outcome = run_many(
    {figures!r}, fast=True, jobs=jobs, shard_cells=True,
    disk_cache=True,
)
report = outcome.report
print(json.dumps({{
    "total_seconds": report.total_seconds,
    "cells": sum(t.cells for t in report.timings),
    "ok": all(t.ok for t in report.timings),
    "cache_stats": report.cache_stats,
}}))
"""


def _run_child(jobs: int, cache_dir: Path) -> dict:
    env = dict(os.environ, REPRO_CACHE_DIR=str(cache_dir))
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    script = _CHILD_SCRIPT.format(figures=list(SWEEP_FIGURES))
    process = subprocess.run(
        [sys.executable, "-c", script, str(jobs)],
        capture_output=True, text=True, env=env, check=True,
    )
    return json.loads(process.stdout)


def generate_report(path: Path) -> dict:
    """Measure the four modes in fresh subprocesses and write the report."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-shard-") as tmp:
        warm_dir = Path(tmp) / "warm"
        cold_dir = Path(tmp) / "cold-sharded"
        modes = [
            ("serial-cold", 1, warm_dir),    # populates warm_dir
            ("sharded-cold", 4, cold_dir),   # separate dir: stays cold
            ("serial-warm", 1, warm_dir),
            ("sharded-warm", 4, warm_dir),
        ]
        measurements = {}
        for name, jobs, cache_dir in modes:
            measurements[name] = (_run_child(jobs, cache_dir), jobs)

    benchmarks = []
    for name, (measurement, jobs) in measurements.items():
        seconds = measurement["total_seconds"]
        benchmarks.append(
            {
                "name": f"fig08+fig15+fig17::{name}",
                "fullname": f"bench_shard::{name}",
                "group": "shard-modes",
                "extra_info": {
                    "figures": list(SWEEP_FIGURES),
                    "jobs": jobs,
                    "cells": measurement["cells"],
                    "ok": measurement["ok"],
                    "cache_stats": measurement["cache_stats"],
                    "pr1_serial_seconds": PR1_SERIAL_SECONDS,
                    "speedup_vs_pr1": PR1_SERIAL_SECONDS / seconds,
                },
                "stats": {
                    "min": seconds, "max": seconds, "mean": seconds,
                    "median": seconds, "stddev": 0.0,
                    "rounds": 1, "iterations": 1, "total": seconds,
                },
            }
        )
    document = {
        "machine_info": {
            "python_version": platform.python_version(),
            "python_implementation": platform.python_implementation(),
            "machine": platform.machine(),
            "system": platform.system(),
            "cpus": os.cpu_count(),
        },
        "datetime": datetime.now(timezone.utc).isoformat(),
        "version": "repro-bench-1.1",
        "commit_info": {},
        "benchmarks": benchmarks,
    }
    path.write_text(json.dumps(document, indent=2) + "\n")
    return document


def main(argv: list[str]) -> int:
    path = Path(argv[1]) if len(argv) > 1 else Path(__file__).parent / "BENCH_shard_pr2.json"
    document = generate_report(path)
    print(f"{'mode':<14} {'seconds':>9} {'vs PR1 serial':>14}")
    for entry in document["benchmarks"]:
        name = entry["name"].split("::")[1]
        seconds = entry["stats"]["total"]
        print(f"{name:<14} {seconds:>9.3f} {entry['extra_info']['speedup_vs_pr1']:>13.1f}x")
    print(f"report written to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
