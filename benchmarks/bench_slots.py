"""Micro-benchmark for the ``__slots__`` pass over the hot IR classes.

Instantiation throughput of :class:`repro.ir.command.Command` and
:class:`repro.scheduling.events.ScheduledCommand` dominates stream
compilation and (before the lazy-timeline fast path) event simulation, so
the slots pass is measured here.  Measured on the PR that introduced it
(CPython 3.11): ~4% faster Command construction and 43% smaller instances
(128 B vs 224 B including the ``__dict__``) versus the dict layout.

Run with ``pytest benchmarks/bench_slots.py --benchmark-only -q``.
"""

from repro.ir.command import Command, OpKind, Unit
from repro.scheduling.events import ScheduledCommand

N = 20_000


def _build_commands():
    return [
        Command(
            cid=i, unit=Unit.MATRIX_UNIT, kind=OpKind.FC_QKV,
            flops=1e6, bytes_moved=4096, dims=(1, 64, 64),
            deps=(max(0, i - 1),), tag="bench",
        )
        for i in range(N)
    ]


def _build_scheduled():
    return [
        ScheduledCommand(
            cid=i, unit=Unit.MATRIX_UNIT, kind=OpKind.FC_QKV, tag="bench",
            start=float(i), end=float(i + 1), flops=1e6, bytes_moved=4096,
        )
        for i in range(N)
    ]


def test_command_construction_benchmark(benchmark):
    commands = benchmark(_build_commands)
    assert len(commands) == N
    assert not hasattr(commands[0], "__dict__")


def test_scheduled_command_construction_benchmark(benchmark):
    scheduled = benchmark(_build_scheduled)
    assert len(scheduled) == N
    assert not hasattr(scheduled[0], "__dict__")
