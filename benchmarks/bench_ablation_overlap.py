"""Benchmark: regenerate Ablation of the paper.

Overlap-aware (PAS) scheduling vs naive scheduling on identical command
streams - isolates the scheduling contribution.

Run with ``pytest benchmarks/bench_ablation_overlap.py --benchmark-only -s`` to also print the
regenerated rows next to the paper's published claims.
"""

from repro.experiments.registry import run_experiment


def test_ablation_overlap_benchmark(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("ablation-overlap",), kwargs={"fast": True}, rounds=1, iterations=1,
    )
    print()
    print(result.to_text())
    assert result.rows
