"""Benchmark: regenerate Sec. 6.3 of the paper.

Functional validation of the IANUS dataflow against an FP32 reference
(stand-in for the FPGA-prototype perplexity check).

Run with ``pytest benchmarks/bench_prototype.py --benchmark-only -s`` to also print the
regenerated rows next to the paper's published claims.
"""

from repro.experiments.registry import run_experiment


def test_prototype_benchmark(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("prototype",), kwargs={"fast": True}, rounds=1, iterations=1,
    )
    print()
    print(result.to_text())
    assert result.rows
