"""Benchmark: regenerate Table 1 of the paper.

IANUS simulation parameters regenerated from the configuration objects.

Run with ``pytest benchmarks/bench_table1.py --benchmark-only -s`` to also print the
regenerated rows next to the paper's published claims.
"""

from repro.experiments.registry import run_experiment


def test_table1_benchmark(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("table1",), kwargs={"fast": True}, rounds=1, iterations=1,
    )
    print()
    print(result.to_text())
    assert result.rows
