"""Benchmark: regenerate Table 3 of the paper.

BERT and GPT-2 network configurations and parameter counts.

Run with ``pytest benchmarks/bench_table3.py --benchmark-only -s`` to also print the
regenerated rows next to the paper's published claims.
"""

from repro.experiments.registry import run_experiment


def test_table3_benchmark(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("table3",), kwargs={"fast": True}, rounds=1, iterations=1,
    )
    print()
    print(result.to_text())
    assert result.rows
