"""Benchmark-harness configuration.

Each ``bench_*.py`` module regenerates one table or figure of the paper via
``repro.experiments.registry`` and times the regeneration with
pytest-benchmark.  Run the whole harness with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to print every regenerated table next to the paper's claims.
"""
