"""Benchmark: regenerate Fig. 13 of the paper.

Unified vs partitioned memory organisations, QK^T/SV mapping and scheduling
ablation - six configurations per GPT-2 model (paper: IANUS reaches 1.9-4.3x).

Run with ``pytest benchmarks/bench_fig13.py --benchmark-only -s`` to also print the
regenerated rows next to the paper's published claims.
"""

from repro.experiments.registry import run_experiment


def test_fig13_benchmark(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("fig13",), kwargs={"fast": True}, rounds=1, iterations=1,
    )
    print()
    print(result.to_text())
    assert result.rows
