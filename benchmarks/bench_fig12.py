"""Benchmark: regenerate Fig. 12 of the paper.

Adaptive FC mapping (Algorithm 1) against always-MU and always-PIM static
mappings for 4/8/16 input tokens (paper: 1.4x / 1.2x average gains).

Run with ``pytest benchmarks/bench_fig12.py --benchmark-only -s`` to also print the
regenerated rows next to the paper's published claims.
"""

from repro.experiments.registry import run_experiment


def test_fig12_benchmark(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("fig12",), kwargs={"fast": True}, rounds=1, iterations=1,
    )
    print()
    print(result.to_text())
    assert result.rows
