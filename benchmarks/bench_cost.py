"""Benchmark: regenerate Sec. 7.2 of the paper.

Cost analysis: performance per watt of TDP vs a single A100
(paper: 3.9x / 2.7x / 2.1x for 6.7B / 13B / 30B).

Run with ``pytest benchmarks/bench_cost.py --benchmark-only -s`` to also print the
regenerated rows next to the paper's published claims.
"""

from repro.experiments.registry import run_experiment


def test_cost_benchmark(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("cost",), kwargs={"fast": True}, rounds=1, iterations=1,
    )
    print()
    print(result.to_text())
    assert result.rows
