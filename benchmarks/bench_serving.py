"""Perf-regression smoke benchmark for the serving subsystem.

Times the ``serving`` experiment (the GPT-2 XL load sweep: offered load x
backend x policy, 16 cells in fast mode) through the serial runner, and
asserts its two headline properties so a perf regression can never hide a
correctness one: the throughput-latency curve stays monotone in offered
load, and interleaved continuous batching dominates FCFS at the highest
load.  Run with::

    pytest benchmarks/bench_serving.py --benchmark-only -q

Set ``REPRO_BENCH_REPORT=/path/to/BENCH_serving.json`` to also persist the
per-experiment timing report for diffing against a previous run.
"""

import os

from repro.perf import run_many, write_report


def test_serving_sweep_benchmark(benchmark):
    outcome = benchmark.pedantic(
        run_many,
        args=(("serving",),),
        kwargs={"fast": True, "jobs": 1},
        rounds=1,
        iterations=1,
    )
    assert all(t.ok for t in outcome.report.timings)
    result = outcome.results["serving"]
    assert result.data["monotone"]
    assert result.data["dominates"]
    report_path = os.environ.get("REPRO_BENCH_REPORT")
    if report_path:
        write_report(outcome.report, report_path)
    print()
    print(outcome.report.to_text())
    print(outcome.report.cache_summary())
