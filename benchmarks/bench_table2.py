"""Benchmark: regenerate Table 2 of the paper.

A100 / DFX / IANUS system specifications.

Run with ``pytest benchmarks/bench_table2.py --benchmark-only -s`` to also print the
regenerated rows next to the paper's published claims.
"""

from repro.experiments.registry import run_experiment


def test_table2_benchmark(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("table2",), kwargs={"fast": True}, rounds=1, iterations=1,
    )
    print()
    print(result.to_text())
    assert result.rows
