"""Perf-regression smoke benchmark for cluster serving.

Times the PR 5 ``cluster`` sweep (GPT-2 XL on replicated IANUS: replicas x
router x admission x offered load on the heavy-tailed ``skewed`` trace at
``kv_fraction=0.25``) through the serial runner, and asserts the sweep's
headline properties so a perf regression can never hide a correctness one:

* a one-replica cluster reproduces the single-device simulator byte for
  byte, under every router and admission mode (the differential identity);
* kv-aware routing beats round-robin at the stressed corner (p99 latency
  and load imbalance, both admission modes);
* optimistic admission admits at least as many requests as
  worst-case-commit on every cell — and strictly more at the stressed
  corner, with real preemptions recomputing real tokens;
* every cell's event logs pass the extended scheduling-invariant checks
  (exact page-ledger replay included) — the bench doubles as an oracle for
  the growth/preemption machinery.

Run with::

    pytest benchmarks/bench_cluster.py --benchmark-only -q

Set ``REPRO_BENCH_REPORT=/path/to/BENCH_cluster.json`` to also persist the
per-experiment timing report — augmented with a ``cluster_claims`` section
pinning the differential identity, the router comparison and the stressed
admission numbers — for diffing against a previous run
(``BENCH_cluster_pr5.json`` is the PR 5 reference).
"""

import json
import os

from repro.perf import run_many, write_report


def test_cluster_sweep_benchmark(benchmark):
    outcome = benchmark.pedantic(
        run_many,
        args=(("cluster",),),
        kwargs={"fast": True, "jobs": 1},
        rounds=1,
        iterations=1,
    )
    assert all(t.ok for t in outcome.report.timings)
    result = outcome.results["cluster"]
    assert result.data["differential"]
    assert result.data["kv_beats_rr"]
    assert result.data["admits_at_least"]
    assert result.data["admits_strictly_more"]
    assert result.data["valid"]
    report_path = os.environ.get("REPRO_BENCH_REPORT")
    if report_path:
        path = write_report(outcome.report, report_path)
        document = json.loads(path.read_text())
        document["cluster_claims"] = {
            key: result.data[key]
            for key in (
                "differential", "kv_beats_rr", "admits_at_least",
                "admits_strictly_more", "valid", "router_wins", "stressed",
            )
        }
        path.write_text(json.dumps(document, indent=2) + "\n")
    print()
    print(outcome.report.to_text())
    print(outcome.report.cache_summary())
