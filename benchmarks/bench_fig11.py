"""Benchmark: regenerate Fig. 11 of the paper.

Dynamic energy of NPU-MEM and IANUS normalised to IANUS/GPT-2 M
(paper: 3.7-4.4x energy-efficiency gains).

Run with ``pytest benchmarks/bench_fig11.py --benchmark-only -s`` to also print the
regenerated rows next to the paper's published claims.
"""

from repro.experiments.registry import run_experiment


def test_fig11_benchmark(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("fig11",), kwargs={"fast": True}, rounds=1, iterations=1,
    )
    print()
    print(result.to_text())
    assert result.rows
