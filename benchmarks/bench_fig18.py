"""Benchmark: regenerate Fig. 18 of the paper.

Strong scaling of GPT 6.7B across 2/4/8 IANUS devices
(paper: 127.1 / 211.6 / 317.6 tokens per second).

Run with ``pytest benchmarks/bench_fig18.py --benchmark-only -s`` to also print the
regenerated rows next to the paper's published claims.
"""

from repro.experiments.registry import run_experiment


def test_fig18_benchmark(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("fig18",), kwargs={"fast": True}, rounds=1, iterations=1,
    )
    print()
    print(result.to_text())
    assert result.rows
