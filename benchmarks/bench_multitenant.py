"""Multi-model multi-tenant serving benchmark (PR 10).

PR 10 lets a replica co-host a model set (weight swaps priced over the
host link), teaches the cluster router to see resident weights, and adds
per-class admission shares for tenant isolation.  This bench walks the
consolidation frontier:

* ``frontier`` — a three-model set ({gpt2-xl, gemma-1b, gemma-2b}, each
  of which fits IANUS's 8 GiB alone) served by 2 and 3 replicas at a
  fixed per-replica load, two priority classes with per-class SLOs and
  admission shares.  Each fleet size runs every router: the model-blind
  baselines (round-robin, join-shortest-queue) against ``model-aware``
  routing on (resident model, load, free KV).  The headline is pooled
  SLO attainment by router — swap avoidance is worth real attainment on
  a consolidated fleet.
* validation rides along in every cell: the array engine must reproduce
  the object engine's per-replica event logs byte for byte (multi-model
  runs take the per-iteration path on both engines), and the logs must
  replay clean through the model-tracking invariant checker (forged or
  deleted ``model_swap`` events fail the cell).

Run with::

    pytest benchmarks/bench_multitenant.py --benchmark-only -q

``REPRO_BENCH_MULTITENANT_REQUESTS`` caps the cell sizes (CI smoke uses
a small cap; the every-fleet-size strict-win assertion only engages at
full scale, the at-least-one-stressed-cell win, byte-identity and
zero-violation assertions always).  Set
``REPRO_BENCH_REPORT=/path/to/BENCH_multitenant.json`` to persist the
cells (``BENCH_multitenant_pr10.json`` is the PR 10 reference).
"""

import json
import os
from time import perf_counter

from repro.experiments import multi_tenant

ROUTERS = ("round-robin", "least-outstanding-tokens", "model-aware")
REPLICAS = (2, 3)
FULL_REQUESTS = multi_tenant.FULL_NUM_REQUESTS
SEED = multi_tenant.SEED


def _requested_size() -> int:
    raw = os.environ.get("REPRO_BENCH_MULTITENANT_REQUESTS")
    return FULL_REQUESTS if not raw else max(1, int(raw))


def run_multitenant() -> dict:
    requested = _requested_size()
    full_scale = requested >= FULL_REQUESTS
    size = min(FULL_REQUESTS, requested)
    cells = {}
    for count in REPLICAS:
        for router in ROUTERS:
            start = perf_counter()
            out = multi_tenant._run_cell(
                {
                    "replicas": count,
                    "router": router,
                    "num_requests": size,
                    "seed": SEED,
                }
            )
            wall = perf_counter() - start
            metrics = out["metrics"]
            cells[f"r{count}-{router}"] = {
                "replicas": count,
                "router": router,
                "requests": size,
                "consolidation": out["consolidation"],
                "model_swaps": metrics["model_swaps"],
                "model_swap_s": round(metrics["model_swap_s"], 3),
                "makespan_s": round(metrics["makespan_s"], 3),
                "latency_p99_s": round(metrics["latency_p99_s"], 4),
                "slo_attainment": round(metrics["slo_attainment"], 4),
                "slo_by_class": {
                    cls: round(value, 4)
                    for cls, value in metrics["slo_by_class"].items()
                },
                "slo_by_model_class": {
                    key: round(value, 4)
                    for key, value in metrics["slo_by_model_class"].items()
                },
                "violations": out["violations"],
                "engines_byte_identical": out["engines_agree"],
                "wall_s": round(wall, 3),
            }
    wins = {}
    for count in REPLICAS:
        aware = cells[f"r{count}-model-aware"]["slo_attainment"]
        best_blind = max(
            cells[f"r{count}-{router}"]["slo_attainment"]
            for router in ROUTERS
            if router != "model-aware"
        )
        wins[str(count)] = aware > best_blind
    return {
        "benchmark": "multitenant",
        "backend": multi_tenant.BACKEND,
        "models": list(multi_tenant.MODEL_NAMES),
        "trace": multi_tenant.TRACE_NAME,
        "num_classes": multi_tenant.NUM_CLASSES,
        "slo_targets": list(multi_tenant.SLO_TARGETS),
        "class_shares": list(multi_tenant.CLASS_SHARES),
        "load_per_replica": multi_tenant.LOAD,
        "max_batch": multi_tenant.MAX_BATCH,
        "full_scale": full_scale,
        "model_aware_wins": wins,
        "cells": cells,
    }


def test_multitenant_benchmark(benchmark):
    document = benchmark.pedantic(run_multitenant, rounds=1, iterations=1)
    cells = document["cells"]
    # Correctness gates engage at every scale: both engines agree on
    # every cell and the model-tracking replay finds nothing.
    assert all(cell["engines_byte_identical"] for cell in cells.values())
    assert all(cell["violations"] == 0 for cell in cells.values())
    # Consolidation prices real weight swaps wherever R < len(models).
    assert all(
        cell["model_swaps"] > 0
        for cell in cells.values()
        if cell["replicas"] < len(document["models"])
    )
    # The frontier: model-aware routing strictly beats the best
    # model-blind baseline at one stressed fleet size at least; at full
    # scale it must win at every swept fleet size.
    assert any(document["model_aware_wins"].values())
    if document["full_scale"]:
        assert all(document["model_aware_wins"].values())
    report_path = os.environ.get("REPRO_BENCH_REPORT")
    if report_path:
        with open(report_path, "w") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
    print()
    print(json.dumps(document, indent=2))
