"""Benchmark: regenerate Fig. 9 of the paper.

GPT-2 XL latency on DFX, NPU-MEM and IANUS over the DFX paper's workload
sweep (paper: 3.2x average speedup over DFX, 49.3x for (128,1)).

Run with ``pytest benchmarks/bench_fig09.py --benchmark-only -s`` to also print the
regenerated rows next to the paper's published claims.
"""

from repro.experiments.registry import run_experiment


def test_fig09_benchmark(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("fig09",), kwargs={"fast": True}, rounds=1, iterations=1,
    )
    print()
    print(result.to_text())
    assert result.rows
