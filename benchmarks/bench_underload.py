"""Underload benchmark: arrival-batched macro admission (PR 8).

PR 7's array engine is fast when saturated but degenerates on underloaded
traces: every macro step is capped at the next single arrival, so a
lightly-loaded diurnal day costs O(arrivals) macro bindings.  PR 8 absorbs
whole arrival windows in closed form.  Cells:

* ``underload_speedup`` — the headline: one 0.3x-capacity diurnal
  ``chatbot`` trace served by the array engine with arrival batching off
  (the PR 7 arrival-capped path) vs on.  ``advance`` wall (the macro
  binding loop the tentpole replaces) and end-to-end wall are both
  recorded; the acceptance bar is a >= 10x ``advance`` improvement under
  the fcfs cell at full scale, with the smaller end-to-end ratio (shared
  trace prep and offer costs are identical on both sides) reported
  alongside, never hidden.  The ``interleaved`` companion exercises the
  burst-runner regime (overlapping clumps) and is reported without an
  acceptance bar.
* ``diurnal_day`` — a full day of diurnal traffic at the PR 6
  chaos-workload shape (``chatbot``, amplitude 0.6 over a 86,400 s
  period, 0.55x mean load — the chaos frontier per healthy replica,
  ``max_batch=16``) streamed through the array engine in O(chunk)
  memory.
* ``cluster_100k`` — PR 7's 4-replica 100k cell rerun on the array-native
  cluster core (columnar router scoring, idle-replica advance skipping,
  round-robin whole-trace bucketing via ``offer_many``); the bar is
  beating PR 7's recorded 2.56 s.
* ``validation`` — the correctness side of every perf claim: pooled
  metrics agree to 1e-9 with batching on vs off, event-recorded runs are
  byte-identical to the object engine (events disable absorption by
  construction), a 1-replica array cluster is byte-identical to the
  single simulator under every router, and the benched cluster config
  replays clean through the invariant checker.

Run with::

    pytest benchmarks/bench_underload.py --benchmark-only -q

``REPRO_BENCH_UNDERLOAD_REQUESTS`` caps the cell sizes (CI smoke uses
20_000; wall-clock acceptance assertions only engage at full scale, the
speedup and validation assertions always).  Set
``REPRO_BENCH_REPORT=/path/to/BENCH_underload.json`` to persist the cells
(``BENCH_underload_pr8.json`` is the PR 8 reference).
"""

import json
import os
from time import perf_counter

from repro.core.costmodel import make_cost_model
from repro.models import GPT2_CONFIGS
from repro.serving import (
    ClusterSimulator,
    ServingSimulator,
    decode_kv_bounds,
    get_trace_generator,
)
from repro.serving.array_engine import ArraySimulationRun
from repro.serving.simulator import mean_service_time_s
from repro.serving.trace import DiurnalCurve

MODEL = GPT2_CONFIGS["m"]
BACKEND = "ianus"
TRACE = "chatbot"
MAX_BATCH = 4
#: Offered load of the underload cells, as a fraction of nominal capacity.
UNDERLOAD = 0.3
SPEEDUP_REQUESTS = 200_000
DAY_SECONDS = 86_400.0
#: PR 6's diurnal swing (peak = 1.6x mean, trough = 0.4x mean).
DAY_AMPLITUDE = 0.6
#: PR 6's chaos-ops frontier offers 1.1x one replica's capacity across 2
#: healthy replicas — 0.55x per engine: a realistic day that is mostly
#: underloaded with peaks brushing 0.88x.
DAY_LOAD = 0.55
#: PR 6's chaos-ops batch cap.
DAY_MAX_BATCH = 16
CLUSTER_REQUESTS = 100_000
CLUSTER_REPLICAS = 4
CLUSTER_RATE_RPS = 2000.0 * CLUSTER_REPLICAS
#: PR 7's recorded wall for the same 4-replica 100k cell.
PR7_CLUSTER_WALL_S = 2.56
VALIDATE_REQUESTS = 2_000
#: The headline cell must improve the arrival-capped advance loop by this.
SPEEDUP_BAR = 10.0

POOLED_FIELDS = (
    "num_requests", "makespan_s", "busy_s", "output_tokens", "tokens_per_s",
    "latency_mean_s", "latency_p99_s", "ttft_p99_s", "tpot_mean_s",
    "energy_j", "flops", "admissions", "peak_active", "kv_peak_pages",
)


def _requested_size() -> int:
    raw = os.environ.get("REPRO_BENCH_UNDERLOAD_REQUESTS")
    return SPEEDUP_REQUESTS if not raw else max(1, int(raw))


def _underload_rate(cost_model, generator) -> float:
    service = mean_service_time_s(cost_model, MODEL, generator.workloads)
    return UNDERLOAD / service


def _timed_run(cost_model, trace, *, batching, policy, detail=False):
    """begin/offer/advance/finish with per-phase walls (no trace prep)."""
    ArraySimulationRun.arrival_batching = batching
    simulator = ServingSimulator(
        cost_model, MODEL, engine="array", max_batch=MAX_BATCH,
        policy=policy, per_request_detail=detail,
    )
    bounds = decode_kv_bounds(trace)
    start = perf_counter()
    run = simulator.begin(kv_bounds=bounds)
    begin_s = perf_counter() - start
    start = perf_counter()
    run.offer_many(trace)
    offer_s = perf_counter() - start
    start = perf_counter()
    run.advance_until(None)
    advance_s = perf_counter() - start
    start = perf_counter()
    metrics = run.finish()
    finish_s = perf_counter() - start
    return metrics, {
        "begin_s": begin_s,
        "offer_s": offer_s,
        "advance_s": advance_s,
        "finish_s": finish_s,
        "total_s": begin_s + offer_s + advance_s + finish_s,
    }


def _pooled_drifts(reference, candidate, tol=1e-9):
    drifts = []
    for field in POOLED_FIELDS:
        expected = getattr(reference, field)
        actual = getattr(candidate, field)
        scale = max(abs(expected), abs(actual), 1.0)
        if abs(expected - actual) / scale > tol:
            drifts.append(f"{field}: {expected!r} != {actual!r}")
    return drifts


def _speedup_cell(cost_model, generator, rate_rps, size, policy):
    trace = generator.generate(size, rate_rps, seed=7, curve=DiurnalCurve())
    capped_metrics, capped = _timed_run(
        cost_model, trace, batching=False, policy=policy
    )
    batched_metrics, batched = _timed_run(
        cost_model, trace, batching=True, policy=policy
    )
    drifts = _pooled_drifts(capped_metrics, batched_metrics)
    return {
        "requests": size,
        "policy": policy,
        "load_fraction": UNDERLOAD,
        "capped": {k: round(v, 4) for k, v in capped.items()},
        "batched": {k: round(v, 4) for k, v in batched.items()},
        "advance_speedup": round(capped["advance_s"] / batched["advance_s"], 1)
        if batched["advance_s"] else None,
        "total_speedup": round(capped["total_s"] / batched["total_s"], 1)
        if batched["total_s"] else None,
        "pooled_drifts": drifts,
    }


def _diurnal_day_cell(cost_model, generator, requested):
    """A full simulated day at PR 6's chaos-workload shape: ``chatbot``
    under a one-day diurnal curve at 0.55x mean load (the chaos frontier
    per healthy replica), streamed in O(chunk) memory."""
    service = mean_service_time_s(cost_model, MODEL, generator.workloads)
    rate_rps = DAY_LOAD / service
    day_requests = int(rate_rps * DAY_SECONDS)
    size = min(day_requests, requested)
    simulator = ServingSimulator(
        cost_model, MODEL, engine="array", max_batch=DAY_MAX_BATCH,
        per_request_detail=False,
    )
    bounds = decode_kv_bounds(generator.workloads)
    ArraySimulationRun.arrival_batching = True
    start = perf_counter()
    metrics = simulator.simulate_stream(
        generator.generate_stream(
            size, rate_rps, seed=0, chunk_requests=8192,
            curve=DiurnalCurve(amplitude=DAY_AMPLITUDE, period_s=DAY_SECONDS),
        ),
        kv_bounds=bounds,
    )
    wall = perf_counter() - start
    return {
        "requests": size,
        "rate_rps": round(rate_rps, 3),
        "load_fraction": DAY_LOAD,
        "max_batch": DAY_MAX_BATCH,
        "horizon_s": DAY_SECONDS,
        "curve": f"diurnal(amplitude={DAY_AMPLITUDE}, period_s={DAY_SECONDS})",
        "wall_s": round(wall, 2),
        "sim_requests_per_wall_s": round(size / wall),
        "makespan_s": round(metrics.makespan_s, 1),
        "utilization": round(metrics.utilization, 4),
        "full_scale": size == day_requests,
    }


def _cluster_cell(cost_model, generator, size):
    trace = generator.generate(size, CLUSTER_RATE_RPS, seed=0)
    out = {}
    for router in ("least-outstanding-tokens", "round-robin"):
        cluster = ClusterSimulator(
            cost_model, MODEL, num_replicas=CLUSTER_REPLICAS,
            router=router, engine="array", max_batch=MAX_BATCH,
        )
        start = perf_counter()
        metrics = cluster.simulate(trace, record_events=False)
        wall = perf_counter() - start
        out[router] = {
            "wall_s": round(wall, 2),
            "sim_requests_per_wall_s": round(size / wall),
            "completed": metrics.num_requests,
        }
    return {
        "requests": size,
        "replicas": CLUSTER_REPLICAS,
        "pr7_wall_s": PR7_CLUSTER_WALL_S,
        "routers": out,
        "full_scale": size == CLUSTER_REQUESTS,
    }


def _validation_cells(cost_model, generator, rate_rps):
    trace = generator.generate(
        VALIDATE_REQUESTS, rate_rps, seed=7, curve=DiurnalCurve()
    )
    out = {"requests": VALIDATE_REQUESTS}

    # Event-recorded runs: byte-identical to the object engine (recording
    # events disables absorption by construction, so this also proves the
    # batched engine never silently changes the evented path).
    ArraySimulationRun.arrival_batching = True
    array_sim = ServingSimulator(
        cost_model, MODEL, engine="array", max_batch=MAX_BATCH
    )
    array_rows = [
        m.to_dict()
        for m in array_sim.simulate(trace, record_events=True).per_request
    ]
    object_sim = ServingSimulator(
        cost_model, MODEL, engine="object", max_batch=MAX_BATCH
    )
    object_rows = [
        m.to_dict()
        for m in object_sim.simulate(trace, record_events=True).per_request
    ]
    out["evented_byte_identical"] = array_rows == object_rows

    # Detail mode: batching on == batching off, byte for byte.
    reference, _ = _timed_run(
        cost_model, trace, batching=False, policy="fcfs", detail=True
    )
    candidate, _ = _timed_run(
        cost_model, trace, batching=True, policy="fcfs", detail=True
    )
    out["detail_byte_identical"] = (
        [m.to_dict() for m in reference.per_request]
        == [m.to_dict() for m in candidate.per_request]
    )

    # 1-replica cluster == single simulator, per router.  Byte-identity is
    # asserted on a prefix at the scale the differential suite pins;
    # per-arrival routing offers incrementally, which the repo documents
    # as metric-identical (1 ulp of clock drift can appear on
    # multi-thousand-request traces, on the generic route too), so the
    # full trace is additionally held to 1e-9 pooled agreement.
    ArraySimulationRun.arrival_batching = True
    prefix = trace[:300]
    single = ServingSimulator(
        cost_model, MODEL, engine="array", max_batch=MAX_BATCH
    )
    single_rows = [m.to_dict() for m in single.simulate(prefix).per_request]
    single_full = ServingSimulator(
        cost_model, MODEL, engine="array", max_batch=MAX_BATCH
    ).simulate(trace)
    byte_agree = {}
    pooled_agree = {}
    for router in ("round-robin", "least-outstanding-tokens", "kv-aware"):
        cluster = ClusterSimulator(
            cost_model, MODEL, num_replicas=1, router=router,
            engine="array", max_batch=MAX_BATCH,
        )
        rows = [
            m.to_dict()
            for m in cluster.simulate(prefix, record_events=False).per_request
        ]
        byte_agree[router] = rows == single_rows
        cluster_full = ClusterSimulator(
            cost_model, MODEL, num_replicas=1, router=router,
            engine="array", max_batch=MAX_BATCH,
        )
        pooled = cluster_full.simulate(trace, record_events=False)
        pooled_agree[router] = _pooled_drifts(
            single_full, pooled.per_replica[0]
        ) == []
    out["one_replica_byte_identical_at_pinned_scale"] = byte_agree
    out["one_replica_pooled_within_1e9"] = pooled_agree

    # The benched cluster config, capped, replayed through the checker.
    cluster = ClusterSimulator(
        cost_model, MODEL, num_replicas=CLUSTER_REPLICAS,
        router="least-outstanding-tokens", engine="array",
        max_batch=MAX_BATCH,
    )
    cluster.simulate(
        generator.generate(VALIDATE_REQUESTS, CLUSTER_RATE_RPS, seed=0),
        record_events=True,
    )
    out["cluster_invariant_violations"] = len(cluster.validate_invariants())
    return out


def run_underload() -> dict:
    requested = _requested_size()
    full_scale = requested >= SPEEDUP_REQUESTS
    saved = ArraySimulationRun.arrival_batching
    try:
        cost_model = make_cost_model(BACKEND)
        generator = get_trace_generator(TRACE)
        rate_rps = _underload_rate(cost_model, generator)
        size = min(SPEEDUP_REQUESTS, requested)
        cells = {
            "underload_speedup": _speedup_cell(
                cost_model, generator, rate_rps, size, "fcfs"
            ),
            "underload_interleaved": _speedup_cell(
                cost_model, generator, rate_rps, size, "interleaved"
            ),
            "diurnal_day": _diurnal_day_cell(
                cost_model, generator,
                requested * 5 if not full_scale else (1 << 62)
            ),
            "cluster_100k": _cluster_cell(
                cost_model, generator, min(CLUSTER_REQUESTS, requested)
            ),
            "validation": _validation_cells(cost_model, generator, rate_rps),
        }
    finally:
        ArraySimulationRun.arrival_batching = saved
    return {
        "benchmark": "underload",
        "backend": BACKEND,
        "model": MODEL.name,
        "trace": TRACE,
        "load_fraction": UNDERLOAD,
        "max_batch": MAX_BATCH,
        "full_scale": full_scale,
        "cells": cells,
    }


def test_underload_benchmark(benchmark):
    document = benchmark.pedantic(run_underload, rounds=1, iterations=1)
    cells = document["cells"]
    headline = cells["underload_speedup"]
    # Correctness gates engage at every scale.
    assert headline["pooled_drifts"] == []
    assert cells["underload_interleaved"]["pooled_drifts"] == []
    validation = cells["validation"]
    assert validation["evented_byte_identical"]
    assert validation["detail_byte_identical"]
    assert all(validation["one_replica_byte_identical_at_pinned_scale"].values())
    assert all(validation["one_replica_pooled_within_1e9"].values())
    assert validation["cluster_invariant_violations"] == 0
    # The arrival-batched advance loop must beat the arrival-capped one.
    assert headline["advance_speedup"] is not None
    assert headline["advance_speedup"] >= SPEEDUP_BAR
    if document["full_scale"]:
        assert cells["cluster_100k"]["routers"][
            "least-outstanding-tokens"
        ]["wall_s"] < PR7_CLUSTER_WALL_S
    report_path = os.environ.get("REPRO_BENCH_REPORT")
    if report_path:
        with open(report_path, "w") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
    print()
    print(json.dumps(document, indent=2))
