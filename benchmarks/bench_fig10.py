"""Benchmark: regenerate Fig. 10 of the paper.

Generation-stage latency breakdown of GPT-2 L and XL for NPU-MEM and IANUS
(paper: 4.0x / 3.6x overall generation-stage speedups).

Run with ``pytest benchmarks/bench_fig10.py --benchmark-only -s`` to also print the
regenerated rows next to the paper's published claims.
"""

from repro.experiments.registry import run_experiment


def test_fig10_benchmark(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("fig10",), kwargs={"fast": True}, rounds=1, iterations=1,
    )
    print()
    print(result.to_text())
    assert result.rows
