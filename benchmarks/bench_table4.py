"""Benchmark: regenerate Table 4 of the paper.

Larger LLM configurations used by the scalability analysis.

Run with ``pytest benchmarks/bench_table4.py --benchmark-only -s`` to also print the
regenerated rows next to the paper's published claims.
"""

from repro.experiments.registry import run_experiment


def test_table4_benchmark(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("table4",), kwargs={"fast": True}, rounds=1, iterations=1,
    )
    print()
    print(result.to_text())
    assert result.rows
